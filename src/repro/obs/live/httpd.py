"""Shared live-telemetry HTTP routes + the standalone dashboard server.

:class:`LiveRoutesMixin` implements every route of the live plane over
plain :class:`~http.server.BaseHTTPRequestHandler` machinery:

===========================================  ==============================
``GET /``, ``GET /dashboard``                the single-file HTML dashboard
``GET /events``                              SSE stream (``Last-Event-ID``)
``GET /trends``                              trend artifact, strong ETag
``GET /records``                             store index (``limit/offset``)
``GET /traces``, ``GET /traces/<name>``      Perfetto trace downloads
``GET /metrics`` (format negotiation)        JSON snapshot or Prometheus
``GET /healthz``                             liveness + store + uptime
===========================================  ==============================

The farm queue service (:mod:`repro.farm.queue.httpd`) mixes these
routes into its handler next to the job/lease protocol; the read-only
:class:`DashboardServer` below (``repro dashboard``) mounts them over
just a result store + trend store, with the last-run snapshot standing
in for live controller state.

The host server provides the shared attributes the mixin reads:
``publisher`` (or None), ``trend_store`` (or None), ``result_store``
(or None), ``traces_dir`` (or None), and ``started_monotonic``.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .dashboard import DASHBOARD_ETAG, DASHBOARD_HTML, HTML_CONTENT_TYPE
from .exposition import OPENMETRICS_CONTENT_TYPE, render_exposition
from .publisher import SSE_CONTENT_TYPE, TelemetryPublisher, serve_sse

__all__ = [
    "ApiError",
    "DashboardServer",
    "JSON_CONTENT_TYPE",
    "LiveRoutesMixin",
    "make_dashboard_server",
]

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Trace file names we are willing to serve: plain names, no path parts.
_TRACE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class ApiError(Exception):
    """An HTTP error response: status code + JSON ``error`` message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class LiveRoutesMixin:
    """The live plane's routes, shared by both servers (see module doc)."""

    # -- response plumbing ---------------------------------------------------

    def _send_json(
        self,
        payload: dict,
        status: int = 200,
        headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        body = json.dumps(payload, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers or []:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_empty(self, status: int) -> None:
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _etag_matches(self, etag: str) -> bool:
        if_none_match = self.headers.get("If-None-Match", "")
        candidates = [v.strip() for v in if_none_match.split(",")]
        return etag in candidates or "*" in candidates

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _send_body(
        self,
        body: bytes,
        content_type: str,
        etag: Optional[str] = None,
        headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        """200 with an optional strong ETag; 304 when it revalidates."""
        if etag is not None and self._etag_matches(etag):
            self._send_not_modified(etag)
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        for name, value in headers or []:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _query(self) -> dict:
        return parse_qs(urlsplit(self.path).query)

    def _query_float(self, query: dict, name: str) -> Optional[float]:
        values = query.get(name)
        if not values:
            return None
        try:
            return float(values[0])
        except ValueError:
            raise ApiError(400, f"query parameter {name!r} must be a number")

    # -- the routes ----------------------------------------------------------

    def _get_dashboard(self) -> None:
        self._send_body(
            DASHBOARD_HTML.encode(), HTML_CONTENT_TYPE, etag=DASHBOARD_ETAG
        )

    def _wants_prometheus(self) -> bool:
        """``?format=prometheus`` or an Accept header asking for text."""
        query = self._query()
        fmt = (query.get("format") or [None])[0]
        if fmt is not None:
            if fmt not in ("prometheus", "openmetrics", "json"):
                raise ApiError(400, f"unknown metrics format {fmt!r}")
            return fmt != "json"
        accept = self.headers.get("Accept", "")
        return "openmetrics-text" in accept or (
            "text/plain" in accept and "application/json" not in accept
        )

    def _send_prometheus(self, source) -> None:
        """Render a registry or snapshot dict as the exposition format."""
        self._send_body(
            render_exposition(source).encode(), OPENMETRICS_CONTENT_TYPE
        )

    def _get_events(self) -> None:
        publisher: Optional[TelemetryPublisher] = self.server.publisher
        if publisher is None:
            raise ApiError(503, "no live publisher on this server")
        query = self._query()
        last_raw = self.headers.get("Last-Event-ID") or (
            query.get("last_event_id") or [None]
        )[0]
        try:
            last_id = int(last_raw) if last_raw is not None else None
        except ValueError:
            raise ApiError(400, "Last-Event-ID must be an integer")
        max_events_f = self._query_float(query, "max_events")
        self.send_response(200)
        self.send_header("Content-Type", SSE_CONTENT_TYPE)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        serve_sse(
            self.wfile,
            publisher,
            last_event_id=last_id,
            max_events=int(max_events_f) if max_events_f is not None else None,
            idle_timeout_s=self._query_float(query, "idle_timeout"),
        )

    def _get_trends(self) -> None:
        from ..trends.report import dashboard_payload, payload_etag

        trend_store = self.server.trend_store
        if trend_store is None:
            payload = {"schema": 1, "runs": 0, "status": "ok", "series": {}}
        else:
            payload = dashboard_payload(trend_store)
        etag = payload_etag(payload)
        self._send_body(
            json.dumps(payload, indent=1).encode(),
            JSON_CONTENT_TYPE,
            etag=etag,
            headers=[("Cache-Control", "no-cache")],
        )

    def _get_records(self) -> None:
        store = self.server.result_store
        if store is None:
            raise ApiError(404, "this server has no result store")
        query = self._query()
        limit_f = self._query_float(query, "limit")
        offset_f = self._query_float(query, "offset")
        limit = int(limit_f) if limit_f is not None else 50
        offset = int(offset_f) if offset_f is not None else 0
        if limit < 1 or offset < 0:
            raise ApiError(400, "limit must be >= 1 and offset >= 0")
        self._send_json(
            {
                "total": store.count(),
                "offset": offset,
                "records": store.index(limit=limit, offset=offset),
            }
        )

    def _get_result(self, key: str) -> None:
        store = self.server.result_store
        record = store.get(key) if store is not None else None
        if record is None:
            raise ApiError(404, f"no result under key {key}")
        # The key is the content identity: ETag == key, immutable.
        self._send_body(
            json.dumps(record, indent=1).encode(),
            JSON_CONTENT_TYPE,
            etag=f'"{key}"',
            headers=[("Cache-Control", "max-age=31536000")],
        )

    def _traces_dir(self) -> Path:
        traces_dir = self.server.traces_dir
        if traces_dir is None:
            raise ApiError(404, "this server has no traces directory")
        return Path(traces_dir)

    def _get_traces(self) -> None:
        root = self._traces_dir()
        traces = []
        if root.is_dir():
            for path in sorted(root.glob("*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                traces.append({"name": path.name, "bytes": stat.st_size})
        self._send_json({"traces": traces})

    def _get_trace_file(self, name: str) -> None:
        if not _TRACE_NAME.match(name):
            raise ApiError(400, f"bad trace name {name!r}")
        path = self._traces_dir() / name
        try:
            body = path.read_bytes()
            stat = path.stat()
        except OSError:
            raise ApiError(404, f"no trace named {name!r}")
        self._send_body(
            body,
            JSON_CONTENT_TYPE,
            etag=f'"{stat.st_mtime_ns}-{stat.st_size}"',
        )

    def _healthz_extras(self) -> dict:
        """Store record count + uptime — zero-cost on an empty store."""
        store = self.server.result_store
        return {
            "store_records": store.count() if store is not None else 0,
            "uptime_s": round(
                time.monotonic() - self.server.started_monotonic, 3
            ),
        }


class _DashboardHandler(LiveRoutesMixin, BaseHTTPRequestHandler):
    """The standalone, read-only dashboard server's request handler."""

    server_version = "repro-dashboard/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            if path in ("/", "/dashboard"):
                self._get_dashboard()
            elif path == "/events":
                self._get_events()
            elif path == "/trends":
                self._get_trends()
            elif path == "/records":
                self._get_records()
            elif path == "/traces":
                self._get_traces()
            elif path == "/metrics":
                self._get_metrics()
            elif path == "/healthz":
                self._get_healthz()
            elif (m := re.fullmatch(r"/results/([0-9a-f]{8,64})", path)):
                self._get_result(m.group(1))
            elif (m := re.fullmatch(r"/traces/([^/]+)", path)):
                self._get_trace_file(m.group(1))
            else:
                raise ApiError(404, f"no route for GET {path}")
        except ApiError as exc:
            self._send_json({"error": exc.message}, status=exc.status)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )

    # -- standalone-only routes ----------------------------------------------

    def _last_run_metrics(self) -> dict:
        store = self.server.result_store
        last = (store.load_last_run() if store is not None else None) or {}
        metrics = last.get("metrics")
        return metrics if isinstance(metrics, dict) else {}

    def _get_metrics(self) -> None:
        """Metrics of the **last recorded farm run** (read-only server)."""
        snapshot = self._last_run_metrics()
        if self._wants_prometheus():
            self._send_prometheus(snapshot)
        else:
            self._send_json({"source": "last-run", "snapshot": snapshot})

    def _get_healthz(self) -> None:
        store = self.server.result_store
        last = (store.load_last_run() if store is not None else None) or {}
        self._send_json(
            {
                "ok": True,
                "mode": "dashboard",
                "last_run_backend": last.get("backend"),
                **self._healthz_extras(),
            }
        )


class DashboardServer(ThreadingHTTPServer):
    """Read-only telemetry server over a result store + trend store."""

    daemon_threads = True

    def __init__(
        self,
        result_store=None,
        trend_store=None,
        publisher: Optional[TelemetryPublisher] = None,
        traces_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        super().__init__((host, port), _DashboardHandler)
        self.result_store = result_store
        self.trend_store = trend_store
        self.publisher = publisher
        self.traces_dir = traces_dir
        self.verbose = verbose
        self.started_monotonic = time.monotonic()

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"


def make_dashboard_server(
    result_store=None,
    trend_store=None,
    traces_dir=None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    publisher: Optional[TelemetryPublisher] = None,
) -> DashboardServer:
    """Bind the standalone dashboard (``port=0`` picks a free port).

    When no ``publisher`` is injected, one is built over the store and
    trend store; the caller decides whether to ``start()`` its poll
    thread (``repro dashboard`` does, tests poll by hand).
    """
    if publisher is None:
        from .publisher import make_collector

        publisher = TelemetryPublisher(
            make_collector(store=result_store, trend_store=trend_store)
        )
    return DashboardServer(
        result_store=result_store,
        trend_store=trend_store,
        publisher=publisher,
        traces_dir=traces_dir,
        host=host,
        port=port,
        verbose=verbose,
    )
