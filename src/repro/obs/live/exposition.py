"""Prometheus/OpenMetrics text exposition of the metrics registry.

Renders every registry instrument in the OpenMetrics text format
(``# TYPE``/``# HELP`` metadata, ``# EOF`` terminator, counters with the
``_total`` sample suffix), which Prometheus' text parser also accepts:

- counters   → ``# TYPE <name> counter`` + ``<name>_total`` samples;
- gauges     → ``# TYPE <name> gauge`` + plain samples;
- histograms → ``# TYPE <name> summary`` with the registry's **exact**
  percentiles as ``quantile="0.5"/"0.95"/"0.99"`` series plus
  ``_sum``/``_count`` — no bucketing, the same numbers
  :meth:`~repro.obs.registry.Histogram.summary` reports.

Metric names are sanitized (``farm.queue.depth`` →
``farm_queue_depth``); label values are escaped per the exposition
format (``\\``, ``"``, newline), so the registry's cardinality-overflow
series ``{overflow="dropped"}`` and any label value round-trip legally.

The renderer accepts either a live :class:`MetricsRegistry` or the
snapshot dict one persists (``registry.snapshot()``, the ``"metrics"``
block of a farm ``last-run.json``) — the standalone ``repro dashboard``
serves Prometheus text straight from the last-run snapshot.
:func:`parse_exposition` is the parser-level half of the round-trip
tests and the smoke script's assertions.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple, Union

from ..registry import MetricsRegistry

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "parse_exposition",
    "render_exposition",
]

#: Content type of the exposition format (OpenMetrics 1.0 text).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Exact-percentile summary series rendered per histogram.
_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.95", "p95"),
    ("0.99", "p99"),
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")

LabelPairs = Tuple[Tuple[str, str], ...]


def _metric_name(name: str) -> str:
    """``farm.queue.depth`` → ``farm_queue_depth`` (exposition-legal)."""
    out = _NAME_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _label_name(name: str) -> str:
    out = _LABEL_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _escape_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_value(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _render_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    body = ",".join(
        f'{_label_name(k)}="{_escape_value(str(v))}"' for k, v in pairs
    )
    return "{" + body + "}" if body else ""


def _parse_label_string(label_str: str) -> LabelPairs:
    """Snapshot label strings (``{a=1,b=x}``) back to pairs.

    Snapshot strings come from :func:`repro.obs.registry._format_labels`
    — values are unquoted and, by the same convention the trend label
    parser relies on, comma-free.
    """
    body = label_str.strip()
    if body.startswith("{"):
        body = body[1:-1]
    if not body:
        return ()
    pairs = []
    for part in body.split(","):
        key, _, value = part.partition("=")
        pairs.append((key, value))
    return tuple(pairs)


def _iter_entries(source):
    """Normalize a registry or snapshot into (name, kind, series) rows.

    ``series`` is a list of ``(label_pairs, value)`` where histogram
    values are the summary dict every report uses.
    """
    if isinstance(source, MetricsRegistry):
        for name in source.names():
            kind = source.kind(name)
            series = source.series(name)
            rows = []
            for key in sorted(series):
                inst = series[key]
                rows.append(
                    (key, inst.summary() if kind == "histogram" else inst.value)
                )
            yield name, kind, rows
        return
    for name in sorted(source):
        entry = source[name]
        rows = [
            (_parse_label_string(label_str), entry["series"][label_str])
            for label_str in sorted(entry["series"])
        ]
        yield name, entry["kind"], rows


def render_exposition(
    source: Union[MetricsRegistry, dict], namespace: str = ""
) -> str:
    """The full exposition document, ``# EOF``-terminated.

    ``source`` is a live registry or a ``registry.snapshot()`` dict;
    ``namespace`` optionally prefixes every metric name
    (``namespace_<name>``).  Deterministic: sorted at every level, so
    the bytes double as an ETag input.
    """
    lines: List[str] = []
    seen: Dict[str, str] = {}
    for name, kind, rows in _iter_entries(source):
        prom = _metric_name((namespace + "_" if namespace else "") + name)
        if seen.get(prom, kind) != kind:
            # Two source names collapsed onto one exposition name with
            # different kinds; keep both by suffixing the later one.
            prom = f"{prom}_{kind}"
        seen[prom] = kind
        prom_type = "summary" if kind == "histogram" else kind
        lines.append(f"# TYPE {prom} {prom_type}")
        lines.append(f"# HELP {prom} {_escape_help(f'repro {kind} {name}')}")
        for pairs, value in rows:
            if kind == "counter":
                lines.append(
                    f"{prom}_total{_render_labels(pairs)} {_format_value(value)}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{prom}{_render_labels(pairs)} {_format_value(value)}"
                )
            else:  # histogram summary
                summary = value if isinstance(value, dict) else {"count": 0}
                for quantile, pkey in _QUANTILES:
                    if pkey not in summary:
                        continue
                    q_pairs = tuple(pairs) + (("quantile", quantile),)
                    lines.append(
                        f"{prom}{_render_labels(q_pairs)} "
                        f"{_format_value(summary[pkey])}"
                    )
                lines.append(
                    f"{prom}_sum{_render_labels(pairs)} "
                    f"{_format_value(summary.get('sum', 0))}"
                )
                lines.append(
                    f"{prom}_count{_render_labels(pairs)} "
                    f"{_format_value(summary.get('count', 0))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse an exposition document back into metric families.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, {label: value}, float_value), ...]}}``.  Samples are
    attached to the family whose name is the longest declared prefix of
    the sample name (so ``x_total``/``x_sum``/``x_count`` land under
    ``x``).  Raises ``ValueError`` on a malformed sample line — this is
    the parser the round-trip tests trust.
    """
    families: Dict[str, dict] = {}
    declared: List[str] = []
    saw_eof = False
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            break
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, typ = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["type"] = typ
            declared.append(name)
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = _unescape_value(help_text)
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name, label_body, value = m.group(1), m.group(2), m.group(3)
        labels = {
            lm.group(1): _unescape_value(lm.group(2))
            for lm in _LABEL.finditer(label_body or "")
        }
        family = sample_name
        for candidate in sorted(declared, key=len, reverse=True):
            if sample_name == candidate or sample_name.startswith(
                candidate + "_"
            ):
                family = candidate
                break
        families.setdefault(family, {"type": None, "help": None, "samples": []})
        families[family]["samples"].append((sample_name, labels, float(value)))
    if not saw_eof:
        raise ValueError("exposition document is not '# EOF'-terminated")
    return families
