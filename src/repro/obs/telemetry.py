"""Slice-level telemetry: the hub the instrumented runtime reports into.

An :class:`Observability` instance bundles the sinks — a
:class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.perfetto.PerfettoTrace`, a
:class:`~repro.obs.profiler.MpiProfiler`, and (opt-in via
``spans=True``) a :class:`~repro.obs.spans.SpanTracker` for causal
message-lifecycle tracing — and exposes the hook methods the BCS
runtime calls from its hot paths.

Wiring: ``runtime.attach_observability(obs)`` stores the hub on the
runtime, the slice scheduler, and every NIC; every instrumented call
site guards with a single ``if obs is not None`` so a run without
observability pays one attribute read per hook point and nothing else.
Hooks never yield into the simulator, so instrumentation cannot perturb
virtual time (the golden-timings tests pin this).

Metric catalog (see docs/OBSERVABILITY.md):

=================================  =========  ================================
metric                             kind       meaning
=================================  =========  ================================
``bcs.slice.count``                counter    slices, labeled kind=active/idle
``bcs.slice.utilization``          histogram  busy_ns / timeslice per slice
``bcs.slice.overruns``             counter    slices exceeding the timeslice
``bcs.microphase.duration_ns``     histogram  per-phase duration (labeled)
``bcs.strobe.skew_ns``             histogram  per-phase node completion skew
``bcs.queue.depth``                histogram  descriptor queue depth per slice
``bcs.match.unexpected``           gauge      unexpected sends queued (matcher)
``bcs.match.posted``               gauge      posted receives queued (matcher)
``bcs.sched.granted_bytes``        histogram  bytes granted per active slice
``bcs.sched.link_utilization``     histogram  per-source tx budget fraction
``bcs.sched.backlog_bytes``        gauge      current scheduler backlog
``nic.thread.busy_ns``             counter    NIC thread busy time (per node)
=================================  =========  ================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .perfetto import PerfettoTrace
from .profiler import MpiProfiler
from .registry import MetricsRegistry
from .spans import SpanTracker

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime

__all__ = ["Observability", "PHASE_THREADS"]

#: Which NIC thread(s) a microphase wakes (paper §4.2, Figure 5) —
#: used to label NIC-thread occupancy spans.
PHASE_THREADS = {
    "DEM": "BS/BR",
    "MSM": "BR",
    "P2P": "DH",
    "BBM": "CH",
    "RM": "RH",
}

#: Thread-track ids inside each node's process group.
TID_MICROPHASES = 0
TID_NIC = 1


class Observability:
    """Telemetry hub: metrics registry + Perfetto trace + MPI profiler."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        perfetto: bool = True,
        profile: bool = True,
        spans: bool = False,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.perfetto: Optional[PerfettoTrace] = PerfettoTrace() if perfetto else None
        self.profiler: Optional[MpiProfiler] = MpiProfiler() if profile else None
        #: Causal message-lifecycle tracker (``spans=True``); feeds the
        #: critical-path extractor and the Perfetto flow events.
        self.spans: Optional[SpanTracker] = SpanTracker() if spans else None
        self.runtime: Optional["BcsRuntime"] = None
        self.timeslice = 0
        self.mgmt_pid = 0
        #: Microphase currently driven by the Strobe Sender (labels NIC
        #: occupancy spans with the thread that phase wakes).
        self.current_phase: Optional[str] = None
        #: (slice_no, phase) -> completion times of participating nodes.
        self._phase_done: Dict[Tuple[int, str], List[int]] = {}
        #: Busy nanoseconds accumulated in the current slice.
        self._slice_busy = 0

    # -- wiring -------------------------------------------------------------------

    def bind(self, runtime: "BcsRuntime") -> None:
        """Attach to a runtime: name tracks, hook scheduler and NICs."""
        from ..bcs.runtime import existing_node_runtimes

        self.runtime = runtime
        self.timeslice = runtime.config.timeslice
        self.mgmt_pid = runtime.cluster.management_node.id
        runtime.scheduler.obs = self
        # Materialized nodes get the hub here; lazily materialized ones
        # (aggregated-strobe mode) inherit it at construction from
        # ``runtime.obs`` — binding never forces a 64k table into being.
        for nrt in existing_node_runtimes(runtime.node_runtimes):
            nrt.nic.obs = self
        if self.spans is not None:
            self.spans.attach(runtime, self.perfetto)
        if self.perfetto is not None:
            self.perfetto.process_name(
                self.mgmt_pid, "slice machine (mgmt)", sort_index=-1
            )
            self.perfetto.thread_name(self.mgmt_pid, TID_MICROPHASES, "microphases")
            for nrt in existing_node_runtimes(runtime.node_runtimes):
                self.node_track(nrt.node_id)

    def node_track(self, node_id: int) -> None:
        """Register one node's Perfetto tracks.

        Called from :meth:`bind` for already-materialized nodes and from
        ``NodeRuntime`` construction for nodes materialized later (the
        aggregated-strobe lazy path), so every node that ever does
        anything gets named tracks regardless of when it came into being.
        """
        if self.perfetto is not None:
            self.perfetto.process_name(node_id, f"node {node_id}")
            self.perfetto.thread_name(
                node_id, TID_MICROPHASES, "microphases (SR)"
            )
            self.perfetto.thread_name(node_id, TID_NIC, "NIC threads")

    # -- slice lifecycle (called by the Strobe Sender) ------------------------------

    def slice_begin(self, slice_no: int, t: int) -> None:
        """Start of a slice: sample descriptor queue and matcher depths."""
        runtime = self.runtime
        self._slice_busy = 0
        if runtime is None:
            return
        # O(active nodes) + O(1) via the runtime's accessors (an idle
        # machine samples four empty sets and two integers), with the
        # same totals the original all-node poll produced.
        sends, recvs, colls, arrived = runtime.queue_depths()
        unexpected, posted = runtime.matcher_pending_totals()
        reg = self.registry
        reg.histogram("bcs.queue.depth", kind="posted_sends").observe(sends)
        reg.histogram("bcs.queue.depth", kind="posted_recvs").observe(recvs)
        reg.histogram("bcs.queue.depth", kind="posted_colls").observe(colls)
        reg.histogram("bcs.queue.depth", kind="arrived_sends").observe(arrived)
        reg.gauge("bcs.match.unexpected").set(unexpected)
        reg.gauge("bcs.match.posted").set(posted)
        if self.perfetto is not None:
            self.perfetto.counter(
                self.mgmt_pid,
                "descriptor queues",
                t,
                {
                    "posted_sends": sends,
                    "posted_recvs": recvs,
                    "posted_colls": colls,
                    "arrived_sends": arrived,
                },
            )

    def slice_end(
        self, slice_no: int, t0: int, t1: int, active: bool, overrun: bool
    ) -> None:
        """End of a slice: utilization sample plus the slice span."""
        reg = self.registry
        reg.counter("bcs.slice.count", kind="active" if active else "idle").inc()
        if overrun:
            reg.counter("bcs.slice.overruns").inc()
        utilization = self._slice_busy / self.timeslice if self.timeslice else 0.0
        reg.histogram("bcs.slice.utilization").observe(utilization)
        if self.perfetto is not None:
            self.perfetto.complete(
                self.mgmt_pid,
                TID_MICROPHASES,
                f"slice {slice_no}",
                "slice",
                t0,
                t1 - t0,
                args={"utilization": utilization, "active": active},
            )

    def idle_skip(
        self, first_slice: int, first_start: int, timeslice: int, count: int
    ) -> None:
        """Replay telemetry for ``count`` idle slices skipped in one jump.

        The Strobe Sender's idle fast-forward only fires when cluster
        state provably cannot change until the wake boundary, so every
        skipped slice would have produced the same samples: zero queue
        depths (``any_work`` was false), frozen matcher gauges, an idle
        slice count, zero utilization.  The sums are sampled once and the
        per-slice records emitted in exactly the order the non-skipping
        loop would have, keeping metric and trace output independent of
        the ``idle_fast_forward`` setting.
        """
        if count <= 0:
            return
        runtime = self.runtime
        unexpected = posted = 0
        if runtime is not None:
            unexpected, posted = runtime.matcher_pending_totals()
        reg = self.registry
        h_sends = reg.histogram("bcs.queue.depth", kind="posted_sends")
        h_recvs = reg.histogram("bcs.queue.depth", kind="posted_recvs")
        h_colls = reg.histogram("bcs.queue.depth", kind="posted_colls")
        h_arrived = reg.histogram("bcs.queue.depth", kind="arrived_sends")
        g_unexpected = reg.gauge("bcs.match.unexpected")
        g_posted = reg.gauge("bcs.match.posted")
        idle_counter = reg.counter("bcs.slice.count", kind="idle")
        utilization = reg.histogram("bcs.slice.utilization")
        perfetto = self.perfetto
        depths = {
            "posted_sends": 0,
            "posted_recvs": 0,
            "posted_colls": 0,
            "arrived_sends": 0,
        }
        for i in range(count):
            t = first_start + i * timeslice
            h_sends.observe(0)
            h_recvs.observe(0)
            h_colls.observe(0)
            h_arrived.observe(0)
            g_unexpected.set(unexpected)
            g_posted.set(posted)
            if perfetto is not None:
                perfetto.counter(self.mgmt_pid, "descriptor queues", t, depths)
            idle_counter.inc()
            utilization.observe(0.0)
            if perfetto is not None:
                perfetto.complete(
                    self.mgmt_pid,
                    TID_MICROPHASES,
                    f"slice {first_slice + i}",
                    "slice",
                    t,
                    timeslice,
                    args={"utilization": 0.0, "active": False},
                )
        self._slice_busy = 0

    # -- microphases ---------------------------------------------------------------

    def phase_begin(self, phase: str, slice_no: int, t: int) -> None:
        """Strobe Sender starts driving a microphase."""
        self.current_phase = phase

    def phase_end(
        self, phase: str, slice_no: int, t0: int, t1: int, n_nodes: int
    ) -> None:
        """Microphase complete (all nodes confirmed, padding applied)."""
        self.current_phase = None
        duration = t1 - t0
        self._slice_busy += duration
        reg = self.registry
        reg.histogram("bcs.microphase.duration_ns", phase=phase).observe(duration)
        reg.counter("bcs.microphase.nodes", phase=phase).inc(n_nodes)
        done = self._phase_done.pop((slice_no, phase), None)
        if done is not None and len(done) >= 2:
            reg.histogram("bcs.strobe.skew_ns", phase=phase).observe(
                max(done) - min(done)
            )
        if self.perfetto is not None:
            self.perfetto.complete(
                self.mgmt_pid,
                TID_MICROPHASES,
                phase,
                "microphase",
                t0,
                duration,
                args={"slice": slice_no, "nodes": n_nodes},
            )

    def node_phase(
        self, node_id: int, phase: str, slice_no: int, t0: int, t1: int
    ) -> None:
        """One Strobe Receiver finished its part of a microphase."""
        self._phase_done.setdefault((slice_no, phase), []).append(t1)
        if self.perfetto is not None:
            self.perfetto.complete(
                node_id,
                TID_MICROPHASES,
                phase,
                "microphase",
                t0,
                t1 - t0,
                args={"slice": slice_no},
            )

    # -- scheduler (called by SliceScheduler.schedule_slice) -------------------------

    def sched_slice(self, scheduler, granted) -> None:
        """Grant decisions of one Message Scheduling Microphase."""
        reg = self.registry
        granted_bytes = 0
        per_src: Dict[int, int] = {}
        for match in granted:
            chunk = match.scheduled_now
            if chunk <= 0:
                continue
            granted_bytes += chunk
            per_src[match.src_node] = per_src.get(match.src_node, 0) + chunk
        reg.histogram("bcs.sched.granted_bytes").observe(granted_bytes)
        budget = scheduler.budget_bytes
        for src in sorted(per_src):
            reg.histogram("bcs.sched.link_utilization").observe(
                per_src[src] / budget if budget else 0.0
            )
        backlog = scheduler.backlog_bytes
        reg.gauge("bcs.sched.backlog_bytes").set(backlog)
        if self.perfetto is not None and self.runtime is not None:
            self.perfetto.counter(
                self.mgmt_pid,
                "scheduler",
                self.runtime.env.now,
                {
                    "granted_bytes": granted_bytes,
                    "backlog_bytes": backlog,
                    "in_flight": len(scheduler.in_flight),
                },
            )
        if self.spans is not None:
            self.spans.sched_granted(granted)

    def sched_retired(self, finished) -> None:
        """Fully transferred matches dropped by the scheduler."""
        if self.spans is not None:
            self.spans.sched_retired(finished)

    # -- NIC threads (called by Nic.compute) -----------------------------------------

    def nic_busy(self, node_id: int, t0: int, t1: int, busy_ns: int) -> None:
        """One NIC-thread work item occupied the thread processor."""
        thread = PHASE_THREADS.get(self.current_phase or "", "misc")
        self.registry.counter("nic.thread.busy_ns", node=node_id).inc(busy_ns)
        if self.perfetto is not None:
            self.perfetto.complete(
                node_id, TID_NIC, thread, "nic", t0, t1 - t0
            )

    # -- reporting ----------------------------------------------------------------

    def nic_occupancy(self) -> Dict[int, float]:
        """Per-node NIC thread occupancy over the whole run."""
        if self.runtime is None or self.runtime.env.now == 0:
            return {}
        total = self.runtime.env.now
        out = {}
        for key, counter in sorted(self.registry.series("nic.thread.busy_ns").items()):
            node = int(dict(key)["node"])
            out[node] = counter.value / total
        return out

    def __repr__(self) -> str:
        bound = "bound" if self.runtime is not None else "unbound"
        return f"<Observability {bound} {self.registry!r}>"
