"""Cross-run performance trend tracking (see docs/TRENDS.md).

The paper's headline claim is *performance* — BCS-MPI stays within a
few percent of the production MPI — so the reproduction's own
performance must be observable over time, not just in one snapshot.
This subpackage persists per-run performance series and classifies each
one with robust statistics:

- :class:`TrendStore` — append-only JSONL store: one line of run
  metadata per recorded run (git SHA, source-tree fingerprint, python
  version, spin-loop calibration) plus one observation line per series;
- :mod:`~repro.obs.trends.record` — adapters that turn a farm run
  summary or a ``bench_wallclock`` report into trend samples,
  normalized by ``calibration_s`` so quick-mode CI runs compare across
  machines;
- :class:`RegressionDetector` — median + MAD over a trailing window
  with warm-up discard and per-series thresholds; classifies each
  series ``ok`` / ``warn`` / ``regress`` and never flips on a single
  noisy run in the history;
- :mod:`~repro.obs.trends.cli` — ``repro trend record|report|check|chart``.

Everything is passive and off the simulator's hot path: recording
happens once per run, after the results exist, and costs nothing when
no trend store is configured.
"""

from .calibrate import Calibration, spin_calibration
from .detect import (
    DEFAULT_OVERRIDES,
    DetectorConfig,
    RegressionDetector,
    Verdict,
    mad,
    median,
)
from .store import RunMeta, Sample, TrendStore, default_trend_path

__all__ = [
    "Calibration",
    "DEFAULT_OVERRIDES",
    "DetectorConfig",
    "RegressionDetector",
    "RunMeta",
    "Sample",
    "TrendStore",
    "Verdict",
    "default_trend_path",
    "mad",
    "median",
    "spin_calibration",
]
