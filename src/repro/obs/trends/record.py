"""Adapters: farm summaries and bench reports -> trend store rows.

Two producers feed the trend store:

- a **farm run** (:func:`record_farm_summary`): per-family wall-clock
  duration aggregates from the ``farm.point.duration_ms`` histogram in
  the run's metrics snapshot, plus any ``sim.*`` / ``matcher.*``
  counters present in the snapshot as exact series.  Fully cached runs
  record nothing — a cache replay measures the disk, not the simulator;
- a **bench run** (:func:`record_bench_report`): the
  ``scripts/bench_wallclock.py`` report — normalized wall-clock per
  workload (timing series) plus virtual runtime and idle-slice counts
  (exact series).

Timing values are stored normalized by the run's spin-loop
``calibration_s`` (see :mod:`.calibrate`), so a slow CI machine and a
fast laptop land on the same trend line.
"""

from __future__ import annotations

import re
import time
from fnmatch import fnmatchcase
from typing import List, Mapping, Optional, Sequence, Tuple

from .calibrate import spin_calibration
from .store import RunMeta, Sample, TrendStore

__all__ = [
    "bench_samples",
    "farm_samples",
    "new_run_meta",
    "record_bench_report",
    "record_farm_summary",
    "snapshot_samples",
]

#: registry-snapshot metrics recorded as exact series when present.
#: ``farm.row.*`` carries per-point row values mirrored by families with
#: ``trend_columns`` (e.g. the critpath blame shares).
DEFAULT_SNAPSHOT_PATTERNS = ("sim.*", "matcher.*", "farm.row.*")

_LABEL = re.compile(r"(\w+)=([^,}]*)")


def _parse_label(label_str: str) -> dict:
    """``"{family=fig8a,kind=x}"`` -> ``{"family": "fig8a", "kind": "x"}``."""
    return dict(_LABEL.findall(label_str or ""))


def _series_suffix(label_str: str) -> str:
    labels = _parse_label(label_str)
    if not labels:
        return "all"
    if set(labels) == {"family"}:
        return labels["family"]
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def new_run_meta(
    source: str,
    *,
    calibration_s: Optional[float] = None,
    quick: Optional[bool] = None,
    fingerprint: Optional[str] = None,
    run_id: Optional[str] = None,
    python: Optional[str] = None,
    now: Optional[float] = None,
) -> RunMeta:
    """Run metadata with every provenance field resolved.

    Defaults are looked up from the environment: current git HEAD,
    source-tree fingerprint, interpreter version, wall-clock time, and
    a fresh spin-loop calibration when none is supplied.
    """
    import platform

    from ...farm.fingerprint import code_fingerprint, git_sha

    now = time.time() if now is None else now
    fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
    sha = git_sha()
    run_id = (
        run_id
        if run_id is not None
        else f"{source}-{int(now * 1e6):x}-{fingerprint[:8]}"
    )
    return RunMeta(
        run_id=run_id,
        source=source,
        git_sha=sha,
        fingerprint=fingerprint,
        python=python if python is not None else platform.python_version(),
        time_s=now,
        quick=quick,
        calibration_s=(
            calibration_s if calibration_s is not None else spin_calibration()
        ),
    )


# -- farm runs ----------------------------------------------------------------


def snapshot_samples(
    snapshot: Mapping[str, dict],
    patterns: Sequence[str] = DEFAULT_SNAPSHOT_PATTERNS,
) -> List[Sample]:
    """Exact series for counters/gauges in a registry snapshot.

    Histograms are skipped (their summaries are machine-dependent
    timings and belong to dedicated timing series).
    """
    out: List[Sample] = []
    for name in sorted(snapshot):
        if not any(fnmatchcase(name, p) for p in patterns):
            continue
        entry = snapshot[name]
        if entry.get("kind") not in ("counter", "gauge"):
            continue
        for label_str in sorted(entry.get("series", {})):
            value = entry["series"][label_str]
            if not isinstance(value, (int, float)):
                continue
            out.append(
                Sample(
                    series=f"{name}/{_series_suffix(label_str)}",
                    value=float(value),
                    raw=float(value),
                    unit="count",
                    kind="exact",
                )
            )
    return out


def farm_samples(
    summary: Mapping[str, object], calibration_s: float
) -> List[Sample]:
    """Trend samples of one farm run summary (``last-run.json`` schema).

    Per executed family: the mean per-point wall-clock, normalized.
    A fully cached run yields no samples at all.
    """
    metrics = summary.get("metrics") or {}
    samples: List[Sample] = []
    durations = metrics.get("farm.point.duration_ms", {})
    for label_str in sorted(durations.get("series", {})):
        digest = durations["series"][label_str]
        if not isinstance(digest, dict) or not digest.get("count"):
            continue
        mean_ms = float(digest["sum"]) / int(digest["count"])
        samples.append(
            Sample(
                series=f"farm.duration_ms/{_series_suffix(label_str)}",
                value=(mean_ms / 1000.0) / calibration_s,
                raw=mean_ms,
                unit="ms",
                kind="timing",
                n=int(digest["count"]),
            )
        )
    if not samples:
        return []  # fully cached run: nothing executed, nothing to trend
    executed = summary.get("executed") or 0
    duration_s = summary.get("duration_s")
    if isinstance(duration_s, (int, float)) and executed:
        samples.append(
            Sample(
                series="farm.run.duration_s",
                value=float(duration_s) / calibration_s,
                raw=float(duration_s),
                unit="s",
                kind="timing",
                n=int(executed),
            )
        )
    samples.extend(snapshot_samples(metrics))
    return samples


def record_farm_summary(
    store: TrendStore,
    summary: Mapping[str, object],
    *,
    calibration_s: Optional[float] = None,
    meta: Optional[RunMeta] = None,
) -> Optional[Tuple[RunMeta, int]]:
    """Append one farm run to the trend store.

    Returns ``(meta, rows_written)``, or ``None`` when the run was
    fully cached (nothing executed, nothing recorded).
    """
    if meta is None:
        meta = new_run_meta(
            "farm",
            calibration_s=calibration_s,
            fingerprint=summary.get("fingerprint") or None,
        )
    if not meta.calibration_s:
        raise ValueError("farm trend recording needs a calibration_s in the run meta")
    samples = farm_samples(summary, meta.calibration_s)
    if not samples:
        return None
    return meta, store.append_run(meta, samples)


# -- bench runs ---------------------------------------------------------------


def bench_samples(report: Mapping[str, object]) -> List[Sample]:
    """Trend samples of one ``bench_wallclock`` report."""
    samples: List[Sample] = []
    for name in sorted(report.get("benchmarks") or {}):
        rec = report["benchmarks"][name]
        samples.append(
            Sample(
                series=f"bench.normalized/{name}",
                value=float(rec["normalized"]),
                raw=float(rec.get("wall_s", 0.0)),
                unit="s",
                kind="timing",
            )
        )
        if "virtual_ns" in rec:
            samples.append(
                Sample(
                    series=f"bench.virtual_ns/{name}",
                    value=float(rec["virtual_ns"]),
                    raw=float(rec["virtual_ns"]),
                    unit="ns",
                    kind="exact",
                )
            )
        if "idle_slices_skipped" in rec:
            samples.append(
                Sample(
                    series=f"bench.idle_slices_skipped/{name}",
                    value=float(rec["idle_slices_skipped"]),
                    raw=float(rec["idle_slices_skipped"]),
                    unit="count",
                    kind="exact",
                )
            )
        if "peak_rss_mib" in rec:
            # Peak RSS varies run-to-run with allocator/interpreter
            # noise, so it trends like a timing (median+MAD tolerance),
            # not as an exact series.  The value is the process-wide
            # high-water mark observed after this benchmark ran (the
            # kernel counter is cumulative and monotone).
            samples.append(
                Sample(
                    series=f"bench.rss/{name}",
                    value=float(rec["peak_rss_mib"]),
                    raw=float(rec["peak_rss_mib"]),
                    unit="MiB",
                    kind="timing",
                )
            )
        if "gc_collections" in rec:
            # Collector activity inside the timed region.  Usually zero
            # after the harness's warm-up freeze; creeping upward means
            # the hot path started allocating cyclic garbage again.
            samples.append(
                Sample(
                    series=f"bench.gc/{name}.collections",
                    value=float(rec["gc_collections"]),
                    raw=float(rec["gc_collections"]),
                    unit="collections",
                    kind="timing",
                )
            )
        if "gc_objects" in rec:
            # Live tracked-object population after the benchmark — the
            # flat-footprint signal the arena node state holds down.
            samples.append(
                Sample(
                    series=f"bench.gc/{name}.objects",
                    value=float(rec["gc_objects"]),
                    raw=float(rec["gc_objects"]),
                    unit="objects",
                    kind="timing",
                )
            )
    return samples


def record_bench_report(
    store: TrendStore,
    report: Mapping[str, object],
    *,
    source: str = "bench",
    meta: Optional[RunMeta] = None,
) -> Tuple[RunMeta, int]:
    """Append one bench report to the trend store.

    The report already carries its own ``calibration_s`` (timings in it
    are normalized by that very value), so no new calibration runs.
    """
    if meta is None:
        meta = new_run_meta(
            source,
            calibration_s=float(report.get("calibration_s") or 0.0) or None,
            quick=bool(report.get("quick")),
            python=str(report.get("python") or "") or None,
            run_id=("seed-baseline" if source == "seed" else None),
        )
    return meta, store.append_run(meta, bench_samples(report))
