"""Robust cross-run regression detection: median + MAD over a window.

The detector answers one question per series: *is the latest run slower
than this series' recent history, beyond what its own noise explains?*

Statistics (see docs/TRENDS.md for the full rationale):

- the baseline is the **median** of the trailing window (excluding the
  latest run), so a single outlier anywhere in the history cannot move
  it;
- the spread is the **MAD** (median absolute deviation, scaled by
  1.4826 to estimate sigma), floored at a fraction of the median so a
  suspiciously quiet series does not turn microseconds of jitter into
  sigmas;
- a series only regresses when the latest value exceeds the baseline
  **both** by a relative margin (``regress_pct``) **and** by a robust
  z-score (``z_regress``) — percent-noise on fast points and absolute
  noise on slow points each veto the other;
- a **drift** check compares the median of the newer half of the
  window against the older half, catching slow creep that never trips
  the single-run test;
- series shorter than ``warmup + min_history + 1`` runs are ``short``:
  reported, never gated.

``exact`` series (virtual time, deterministic event counts) are not
statistical at all: any change against the previous run is a ``warn``
with both values printed, and never a gate failure — a legitimate code
change moves them together with the source fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence

from .store import TrendStore

__all__ = [
    "DEFAULT_OVERRIDES",
    "DetectorConfig",
    "RegressionDetector",
    "Verdict",
    "mad",
    "median",
]

#: Built-in per-family threshold overrides, merged under any user
#: ``--thresholds`` file by the CLI.  The scaling benchmarks' peak RSS
#: is the gate keeping 16k-64k clusters affordable: a footprint that
#: balloons 25% is a real leak of per-node state, not host noise, so it
#: gates far tighter than the generic timing tolerance.
DEFAULT_OVERRIDES: Mapping[str, Mapping[str, float]] = {
    "bench.rss/scaling_*": {"warn_pct": 0.10, "regress_pct": 0.25},
}

#: Conversion from MAD to a sigma estimate for normal-ish noise.
_MAD_SIGMA = 1.4826


def median(values: Sequence[float]) -> float:
    """Plain median (mean of the middle two for even lengths)."""
    data = sorted(values)
    if not data:
        raise ValueError("median of empty sequence")
    mid = len(data) // 2
    if len(data) % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


@dataclass(frozen=True)
class DetectorConfig:
    """Tunables of the regression detector.

    ``overrides`` maps series-id glob patterns to field overrides, so a
    known-noisy family can carry a looser threshold without loosening
    the whole store::

        DetectorConfig(overrides={"farm.duration_ms/table2": {"regress_pct": 1.5}})
    """

    #: trailing runs considered (baseline + latest).
    window: int = 20
    #: leading runs of each series discarded (cold caches, first-run JIT
    #: effects of a fresh machine).
    warmup: int = 1
    #: baseline observations required before the series can gate.
    min_history: int = 3
    #: relative excess over the baseline median for warn / regress.
    warn_pct: float = 0.35
    regress_pct: float = 0.75
    #: robust z-score floors for warn / regress.
    z_warn: float = 3.0
    z_regress: float = 6.0
    #: newer-half vs older-half median excess flagged as drift.
    drift_pct: float = 0.35
    #: MAD floor, as a fraction of the baseline median.
    rel_floor: float = 0.05
    #: series-id glob -> {field: value} overrides.
    overrides: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def for_series(self, series_id: str) -> "DetectorConfig":
        """This config with every matching override pattern applied."""
        cfg = self
        for pattern in sorted(self.overrides):
            if fnmatchcase(series_id, pattern):
                fields = {
                    k: v
                    for k, v in self.overrides[pattern].items()
                    if k in self.__dataclass_fields__ and k != "overrides"
                }
                cfg = replace(cfg, **fields)
        return cfg


@dataclass(frozen=True)
class Verdict:
    """The detector's classification of one series."""

    series: str
    #: "ok" | "warn" | "regress" | "short"
    status: str
    #: latest normalized value (None for an empty series).
    last: Optional[float] = None
    #: baseline median of the history window.
    baseline: Optional[float] = None
    #: latest / baseline (1.0 = unchanged).
    ratio: Optional[float] = None
    #: robust z-score of the latest value.
    z: Optional[float] = None
    #: observations that informed the verdict (after warm-up discard).
    n: int = 0
    kind: str = "timing"
    reason: str = ""

    @property
    def gates(self) -> bool:
        """Whether this verdict fails ``repro trend check``."""
        return self.status == "regress"


def classify(values: Sequence[float], cfg: DetectorConfig) -> Verdict:
    """Classify an anonymous series of normalized values (latest last)."""
    if not values:
        return Verdict(series="", status="short", reason="empty series")
    usable = list(values[cfg.warmup :]) if len(values) > cfg.warmup else [values[-1]]
    usable = usable[-cfg.window :]
    last = usable[-1]
    history = usable[:-1]
    if len(history) < cfg.min_history:
        return Verdict(
            series="",
            status="short",
            last=last,
            n=len(usable),
            reason=(
                f"history {len(history)} < min_history {cfg.min_history}"
            ),
        )

    base = median(history)
    spread = mad(history, base) * _MAD_SIGMA
    floor = max(cfg.rel_floor * abs(base), 1e-12)
    spread = max(spread, floor)
    z = (last - base) / spread
    ratio = last / base if base > 0 else float("inf")
    excess = ratio - 1.0

    status, reason = "ok", ""
    if excess > cfg.warn_pct and z > cfg.z_warn:
        status, reason = "warn", (
            f"latest {last:.4g} is +{excess:.0%} over median {base:.4g} "
            f"(z={z:.1f})"
        )
    if excess > cfg.regress_pct and z > cfg.z_regress:
        status, reason = "regress", (
            f"latest {last:.4g} is +{excess:.0%} over median {base:.4g} "
            f"(z={z:.1f}, limits +{cfg.regress_pct:.0%}/z>{cfg.z_regress:g})"
        )

    # Slow-creep check: has the newer half of the window drifted up?
    if status != "regress" and len(usable) >= 2 * cfg.min_history:
        older = usable[: len(usable) // 2]
        newer = usable[len(usable) // 2 :]
        drift = median(newer) / median(older) - 1.0 if median(older) > 0 else 0.0
        if drift > cfg.regress_pct:
            status, reason = "regress", (
                f"drift: newer half median is +{drift:.0%} over older half"
            )
        elif drift > cfg.drift_pct and status == "ok":
            status, reason = "warn", (
                f"drift: newer half median is +{drift:.0%} over older half"
            )

    return Verdict(
        series="",
        status=status,
        last=last,
        baseline=base,
        ratio=ratio,
        z=z,
        n=len(usable),
        reason=reason,
    )


def classify_exact(values: Sequence[float], cfg: DetectorConfig) -> Verdict:
    """Classify a deterministic series: any change vs the previous run warns."""
    if not values:
        return Verdict(series="", status="short", kind="exact", reason="empty series")
    last = values[-1]
    if len(values) < 2:
        return Verdict(
            series="", status="short", kind="exact", last=last, n=1,
            reason="no previous run",
        )
    prev = values[-2]
    if last != prev:
        return Verdict(
            series="",
            status="warn",
            kind="exact",
            last=last,
            baseline=prev,
            ratio=(last / prev if prev else None),
            n=len(values),
            reason=f"deterministic value changed: {prev:g} -> {last:g}",
        )
    return Verdict(
        series="", status="ok", kind="exact", last=last, baseline=prev,
        ratio=1.0, n=len(values),
    )


class RegressionDetector:
    """Applies :class:`DetectorConfig` to every series of a store."""

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config if config is not None else DetectorConfig()

    def verdict(self, store: TrendStore, series_id: str) -> Verdict:
        rows = store.read_series(series_id)
        values = [
            float(r["value"])
            for r in rows
            if isinstance(r.get("value"), (int, float))
        ]
        kind = rows[-1].get("kind", "timing") if rows else "timing"
        cfg = self.config.for_series(series_id)
        if kind == "exact":
            v = classify_exact(values, cfg)
        else:
            v = classify(values, cfg)
        return replace(v, series=series_id, kind=kind)

    def verdicts(
        self, store: TrendStore, series_glob: Optional[str] = None
    ) -> List[Verdict]:
        """Classify every (matching) series, sorted by series id."""
        out: List[Verdict] = []
        for series_id in store.series_ids():
            if series_glob and not fnmatchcase(series_id, series_glob):
                continue
            out.append(self.verdict(store, series_id))
        return out

    @staticmethod
    def failures(verdicts: Sequence[Verdict]) -> List[Verdict]:
        return [v for v in verdicts if v.gates]

    @staticmethod
    def summary(verdicts: Sequence[Verdict]) -> Dict[str, int]:
        counts: Dict[str, int] = {"ok": 0, "warn": 0, "regress": 0, "short": 0}
        for v in verdicts:
            counts[v.status] = counts.get(v.status, 0) + 1
        return counts
