"""Rendering: per-family trend tables, ASCII sparklines, JSON reports.

Everything renders deterministically from store contents: same store,
same bytes.  The JSON report is the CI artifact — Perfetto-free, one
object per series with the detector's verdict attached, so a dashboard
(or a later bisect) needs no Python to consume it.
"""

from __future__ import annotations

import hashlib
import json
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence

from .detect import DetectorConfig, RegressionDetector, Verdict
from .store import TrendStore

__all__ = [
    "dashboard_payload",
    "json_report",
    "payload_etag",
    "render_chart",
    "render_report",
    "render_verdicts",
    "sparkline",
]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """The last ``width`` values as unicode block characters.

    Scaled min..max over the shown window.  A flat series (including a
    single observation) renders as a run of the middle block — the value
    is neither a low nor a high, and the lowest block reads as "near
    zero" on a dashboard.
    """
    shown = [float(v) for v in values][-width:]
    if not shown:
        return ""
    lo, hi = min(shown), max(shown)
    if hi <= lo:
        return _SPARK_BLOCKS[len(_SPARK_BLOCKS) // 2] * len(shown)
    span = hi - lo
    out = []
    for v in shown:
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal aligned table (kept local so ``repro trend`` imports stay
    free of the experiment harness)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def _grouped(
    store: TrendStore, series_glob: Optional[str]
) -> Dict[str, List[str]]:
    """Series ids grouped by metric (the part before the first ``/``)."""
    groups: Dict[str, List[str]] = {}
    for series_id in store.series_ids():
        if series_glob and not fnmatchcase(series_id, series_glob):
            continue
        metric = series_id.split("/", 1)[0]
        groups.setdefault(metric, []).append(series_id)
    return groups


def render_report(
    store: TrendStore,
    config: Optional[DetectorConfig] = None,
    series_glob: Optional[str] = None,
) -> str:
    """Per-metric tables: one row per series with verdict + sparkline."""
    detector = RegressionDetector(config)
    groups = _grouped(store, series_glob)
    if not groups:
        return "trend store is empty (nothing recorded yet)"
    runs = store.runs()
    sections: List[str] = [
        f"== trend store: {len(runs)} run(s), "
        f"{sum(len(s) for s in groups.values())} series =="
    ]
    for metric in sorted(groups):
        rows = []
        for series_id in groups[metric]:
            v = detector.verdict(store, series_id)
            values = store.values(series_id)
            label = series_id.split("/", 1)[1] if "/" in series_id else "-"
            delta = (
                f"{(v.ratio - 1) * 100:+.1f}%" if v.ratio is not None else "-"
            )
            rows.append(
                [
                    label,
                    str(len(values)),
                    _fmt(v.last),
                    _fmt(v.baseline),
                    delta,
                    v.status,
                    sparkline(values),
                ]
            )
        sections.append(
            f"\n-- {metric} --\n"
            + _format_table(
                ["series", "runs", "last", "median", "Δ", "status", "trend"],
                rows,
            )
        )
    return "\n".join(sections)


def render_chart(
    store: TrendStore,
    series_id: str,
    width: int = 64,
    height: int = 10,
) -> str:
    """A full ASCII chart of one series (latest ``width`` runs)."""
    values = store.values(series_id)[-width:]
    if not values:
        return f"series {series_id!r}: no observations"
    lo, hi = min(values), max(values)
    # A flat series (every run equal — always the case with a single
    # observation) has no min..max scale; pinning it to the bottom row
    # would read as "near zero".  Draw it at mid-height and label the
    # one level it sits at.
    flat = hi <= lo
    mid_y = (height - 1) // 2
    grid = [[" "] * len(values) for _ in range(height)]
    for x, v in enumerate(values):
        y = mid_y if flat else int((v - lo) / (hi - lo) * (height - 1))
        for yy in range(y + 1):
            grid[height - 1 - yy][x] = "█" if yy == y else "│"
    lines = [
        f"{series_id}  (last {len(values)} runs, "
        + (f"flat at {lo:.4g})" if flat else f"min {lo:.4g}, max {hi:.4g})")
    ]
    for i, row in enumerate(grid):
        if flat:
            edge = lo if i == height - 1 - mid_y else None
        else:
            edge = hi if i == 0 else (lo if i == height - 1 else None)
        prefix = f"{edge:>10.4g} ┤" if edge is not None else " " * 10 + " ┤"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "└" + "─" * len(values))
    return "\n".join(lines)


def json_report(
    store: TrendStore,
    config: Optional[DetectorConfig] = None,
    series_glob: Optional[str] = None,
) -> dict:
    """Machine-readable verdict report for CI artifacts."""
    detector = RegressionDetector(config)
    verdicts = detector.verdicts(store, series_glob)
    worst = "ok"
    for v in verdicts:
        if v.status == "regress":
            worst = "regress"
            break
        if v.status == "warn":
            worst = "warn"
    return {
        "schema": 1,
        "runs": store.run_count(),
        "status": worst,
        "summary": RegressionDetector.summary(verdicts),
        "series": {
            v.series: {
                "status": v.status,
                "kind": v.kind,
                "last": v.last,
                "baseline": v.baseline,
                "ratio": v.ratio,
                "z": v.z,
                "n": v.n,
                "reason": v.reason,
            }
            for v in verdicts
        },
    }


def dashboard_payload(
    store: TrendStore,
    config: Optional[DetectorConfig] = None,
    series_glob: Optional[str] = None,
    points: int = 32,
) -> dict:
    """The live dashboard's trend artifact: verdicts + sparkline data.

    Stable schema (version 1): the :func:`json_report` verdict object
    extended per series with ``values`` — the trailing ``points``
    normalized observations, exactly what an HTML sparkline plots.
    Deterministic for a given store, so its canonical bytes make a
    valid ETag (:func:`payload_etag`).
    """
    payload = json_report(store, config, series_glob)
    for series_id, info in payload["series"].items():
        info["values"] = store.values(series_id)[-points:]
    return payload


def payload_etag(payload: dict) -> str:
    """Strong ETag (quoted sha256 prefix) of a JSON-safe payload."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()
    return '"' + hashlib.sha256(canonical).hexdigest()[:32] + '"'


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """One line per series, regressions first — the ``check`` output."""
    order = {"regress": 0, "warn": 1, "short": 2, "ok": 3}
    rows = []
    for v in sorted(verdicts, key=lambda v: (order[v.status], v.series)):
        detail = v.reason or (
            f"last {_fmt(v.last)} vs median {_fmt(v.baseline)}"
            if v.last is not None
            else ""
        )
        rows.append([v.status.upper(), v.series, str(v.n), detail])
    if not rows:
        return "no matching series in the trend store"
    return _format_table(["status", "series", "runs", "detail"], rows)
