"""``repro trend`` — cross-run performance trend subcommands.

::

    repro trend record --farm-store .farm-store        # append last farm run
    repro trend record --bench-report bench.json       # append a bench run
    repro trend record --seed-baseline BENCH_simperf.json
    repro trend report                                 # tables + sparklines
    repro trend report --series 'farm.*'
    repro trend check --series 'bench.*' --json out.json
    repro trend chart farm.duration_ms/fig8a
    repro trend list

Exit codes: 0 = ok (warnings allowed unless ``--strict``), 1 = at
least one series regressed, 2 = bad usage / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .detect import DEFAULT_OVERRIDES, DetectorConfig, RegressionDetector
from .record import record_bench_report, record_farm_summary
from .report import json_report, render_chart, render_report, render_verdicts
from .store import TrendStore, default_trend_path

__all__ = ["main"]


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=f"trend store directory (default: $REPRO_TREND_STORE or {default_trend_path()})",
    )


def _add_detector_args(parser: argparse.ArgumentParser) -> None:
    d = DetectorConfig()
    parser.add_argument("--window", type=int, default=d.window, help=f"trailing runs considered (default {d.window})")
    parser.add_argument("--warmup", type=int, default=d.warmup, help=f"leading runs discarded per series (default {d.warmup})")
    parser.add_argument("--min-history", type=int, default=d.min_history, help=f"baseline runs required to gate (default {d.min_history})")
    parser.add_argument("--warn-pct", type=float, default=d.warn_pct, help=f"relative excess that warns (default {d.warn_pct})")
    parser.add_argument("--regress-pct", type=float, default=d.regress_pct, help=f"relative excess that regresses (default {d.regress_pct})")
    parser.add_argument(
        "--thresholds",
        metavar="JSON",
        default=None,
        help="per-series overrides file: {\"series-glob\": {\"regress_pct\": 1.5}}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trend",
        description="Cross-run performance trend store and regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append one run to the trend store")
    _add_store_arg(record)
    src = record.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--farm-store",
        metavar="PATH",
        help="farm result store (reads its last-run.json)",
    )
    src.add_argument(
        "--bench-report",
        metavar="PATH",
        help="bench_wallclock JSON report to append",
    )
    src.add_argument(
        "--seed-baseline",
        metavar="PATH",
        help="bench-format baseline (e.g. BENCH_simperf.json) recorded once "
        "as the day-one history row; a second invocation is a no-op",
    )

    report = sub.add_parser("report", help="per-family tables with sparklines")
    _add_store_arg(report)
    _add_detector_args(report)
    report.add_argument("--series", metavar="GLOB", default=None, help="only series matching this glob")

    check = sub.add_parser("check", help="gate: fail on a regressed series")
    _add_store_arg(check)
    _add_detector_args(check)
    check.add_argument("--series", metavar="GLOB", default=None, help="only series matching this glob")
    check.add_argument("--json", metavar="PATH", default=None, help="also write the JSON verdict report (CI artifact)")
    check.add_argument("--strict", action="store_true", help="treat warnings as failures too")

    chart = sub.add_parser("chart", help="ASCII chart of one series")
    _add_store_arg(chart)
    chart.add_argument("series", help="series id (see `repro trend list`)")
    chart.add_argument("--width", type=int, default=64)
    chart.add_argument("--height", type=int, default=10)

    lst = sub.add_parser("list", help="list recorded series and run counts")
    _add_store_arg(lst)

    return parser


def _store_from(args) -> TrendStore:
    return TrendStore(Path(args.store)) if args.store else TrendStore()


def _config_from(args) -> DetectorConfig:
    # Built-in overrides first; a user --thresholds file can re-tune
    # any pattern (same-key entries replace the defaults wholesale).
    overrides = {k: dict(v) for k, v in DEFAULT_OVERRIDES.items()}
    if getattr(args, "thresholds", None):
        try:
            loaded = json.loads(Path(args.thresholds).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro trend: cannot read {args.thresholds}: {exc}")
        if not isinstance(loaded, dict):
            raise SystemExit(
                f"repro trend: {args.thresholds} must hold a JSON object"
            )
        overrides.update(loaded)
    return DetectorConfig(
        window=args.window,
        warmup=args.warmup,
        min_history=args.min_history,
        warn_pct=args.warn_pct,
        regress_pct=args.regress_pct,
        overrides=overrides,
    )


def _load_json(path: str) -> dict:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"repro trend: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict):
        print(f"repro trend: {path} does not hold a JSON object", file=sys.stderr)
        raise SystemExit(2)
    return data


def cmd_record(args) -> int:
    store = _store_from(args)
    if args.farm_store:
        path = Path(args.farm_store)
        if path.is_dir():
            path = path / "last-run.json"
        summary = _load_json(str(path))
        recorded = record_farm_summary(store, summary)
        if recorded is None:
            print("nothing to record: the farm run was fully cached")
            return 0
        meta, rows = recorded
    else:
        source = "bench" if args.bench_report else "seed"
        report = _load_json(args.bench_report or args.seed_baseline)
        try:
            meta, rows = record_bench_report(store, report, source=source)
        except ValueError:
            if source == "seed":
                print("seed baseline already recorded; nothing to do")
                return 0
            raise
    print(
        f"recorded run {meta.run_id} ({meta.source}, git {meta.git_sha[:12]}): "
        f"{rows} series row(s) -> {store.root}"
    )
    return 0


def cmd_report(args) -> int:
    print(render_report(_store_from(args), _config_from(args), args.series))
    return 0


def cmd_check(args) -> int:
    store = _store_from(args)
    config = _config_from(args)
    detector = RegressionDetector(config)
    verdicts = detector.verdicts(store, args.series)
    print(render_verdicts(verdicts))
    if args.json:
        payload = json_report(store, config, args.series)
        try:
            Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        except OSError as exc:
            print(f"repro trend: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
    failures = [
        v
        for v in verdicts
        if v.gates or (args.strict and v.status == "warn")
    ]
    counts = RegressionDetector.summary(verdicts)
    print(
        f"\n{len(verdicts)} series: {counts['ok']} ok, {counts['warn']} warn, "
        f"{counts['regress']} regress, {counts['short']} short"
    )
    if failures:
        for v in failures:
            print(f"TREND GATE FAILED: {v.series}: {v.reason}", file=sys.stderr)
        return 1
    print("trend gate passed")
    return 0


def cmd_chart(args) -> int:
    store = _store_from(args)
    if args.series not in store.series_ids():
        print(f"unknown series {args.series!r}", file=sys.stderr)
        known = store.series_ids()
        if known:
            print("known series:\n  " + "\n  ".join(known), file=sys.stderr)
        return 2
    print(render_chart(store, args.series, width=args.width, height=args.height))
    return 0


def cmd_list(args) -> int:
    store = _store_from(args)
    ids = store.series_ids()
    if not ids:
        print("trend store is empty (nothing recorded yet)")
        return 0
    print(f"{store.run_count()} run(s), {len(ids)} series in {store.root}:")
    for series_id in ids:
        print(f"  {series_id}  ({len(store.values(series_id))} observations)")
    return 0


_DISPATCH = {
    "record": cmd_record,
    "report": cmd_report,
    "check": cmd_check,
    "chart": cmd_chart,
    "list": cmd_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _DISPATCH[args.command](args)
    except SystemExit as exc:
        # _load_json/_config_from abort with SystemExit; hand the code
        # back as a plain return so `repro trend` composes as a library.
        if isinstance(exc.code, int):
            return exc.code
        if exc.code:
            print(exc.code, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
