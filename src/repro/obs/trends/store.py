"""Append-only JSONL trend store: performance series across runs.

Layout (everything line-oriented JSON, everything append-only)::

    <root>/runs.jsonl                 one metadata line per recorded run
    <root>/series/<id>.jsonl          one observation line per (run, series)

A *series* is one tracked quantity — e.g. the mean wall-clock duration
of the ``fig8a`` farm family (``farm.duration_ms/fig8a``) or the
normalized wall-clock of one bench workload
(``bench.normalized/sage_fig10``).  A series file is human-auditable
with ``jq``/``python -m json.tool`` and merges trivially across CI
artifact restores: appending is the only write operation.

Each observation carries both the **normalized** value the regression
detector consumes (wall seconds divided by the run's spin-loop
``calibration_s`` — see :mod:`.calibrate`) and the **raw** measurement,
so a flagged regression can always be traced back to real seconds.
Corrupt or truncated lines (a crashed append, a bad artifact merge)
are skipped on read, never raised: the worst outcome of a damaged
store is a shorter history.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

__all__ = [
    "DEFAULT_TREND_STORE",
    "RunMeta",
    "Sample",
    "TrendStore",
    "default_trend_path",
]

#: Default on-disk location (repo-local, gitignored); override with
#: ``REPRO_TREND_STORE`` or ``--store``.
DEFAULT_TREND_STORE = ".trend-store"

#: Series ids: ``<metric>`` or ``<metric>/<label>`` with conservative
#: charsets so the id maps onto one filename on every filesystem (the
#: metric must start alphanumeric, so ``..``-style names never appear).
_SERIES_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*(/[A-Za-z0-9.,=_ -]+)?$")


def default_trend_path() -> Path:
    return Path(os.environ.get("REPRO_TREND_STORE", DEFAULT_TREND_STORE))


@dataclass(frozen=True)
class RunMeta:
    """Provenance of one recorded run — the join key for every series row."""

    run_id: str
    #: what produced the run: "farm" | "bench" | "seed" | ad hoc.
    source: str
    git_sha: str = "unknown"
    #: source-tree fingerprint (see :mod:`repro.farm.fingerprint`).
    fingerprint: str = "unknown"
    python: str = ""
    #: wall-clock unix time the run was recorded.
    time_s: float = 0.0
    #: quick/reduced mode (CI) vs the full configuration; None if n/a.
    quick: Optional[bool] = None
    #: spin-loop calibration used to normalize this run's timings.
    calibration_s: Optional[float] = None

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict) -> "RunMeta":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class Sample:
    """One observation of one series in one run."""

    series: str
    #: normalized, machine-comparable value (what the detector sees).
    value: float
    #: raw measurement in ``unit`` (for humans bisecting a regression).
    raw: Optional[float] = None
    unit: str = "x"
    #: "timing" series gate CI; "exact" series (virtual time, event
    #: counts) are deterministic bookkeeping — a change is reported but
    #: never fails the check on statistical grounds.
    kind: str = "timing"
    #: how many underlying measurements this observation aggregates.
    n: int = 1

    def __post_init__(self):
        if not _SERIES_ID.match(self.series):
            raise ValueError(f"bad series id {self.series!r}")
        if self.kind not in ("timing", "exact"):
            raise ValueError(f"bad sample kind {self.kind!r}")


class TrendStore:
    """Append-only run metadata + per-series observation files."""

    RUNS = "runs.jsonl"

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_trend_path()

    # -- paths ---------------------------------------------------------------

    def _series_path(self, series_id: str) -> Path:
        if not _SERIES_ID.match(series_id):
            raise ValueError(f"bad series id {series_id!r}")
        return self.root / "series" / (series_id.replace("/", "@") + ".jsonl")

    # -- writing -------------------------------------------------------------

    def append_run(self, meta: RunMeta, samples: Iterable[Sample]) -> int:
        """Record one run: its metadata line plus one line per sample.

        Returns the number of series rows written.  Raises
        ``ValueError`` if ``meta.run_id`` was already recorded — the
        guard that keeps a re-entrant CI step from double-counting.
        """
        samples = list(samples)
        if meta.run_id in self.run_ids():
            raise ValueError(f"run {meta.run_id!r} already recorded")
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / self.RUNS, "a") as fh:
            fh.write(json.dumps(meta.to_dict(), sort_keys=True) + "\n")
        (self.root / "series").mkdir(exist_ok=True)
        for sample in samples:
            row = {
                "run": meta.run_id,
                "value": sample.value,
                "raw": sample.raw,
                "unit": sample.unit,
                "kind": sample.kind,
                "n": sample.n,
            }
            with open(self._series_path(sample.series), "a") as fh:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(samples)

    # -- reading -------------------------------------------------------------

    @staticmethod
    def _read_jsonl(path: Path) -> List[dict]:
        try:
            text = path.read_text()
        except OSError:
            return []
        rows: List[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue  # truncated append / damaged artifact: skip
            if isinstance(row, dict):
                rows.append(row)
        return rows

    def runs(self) -> List[dict]:
        """Metadata of every recorded run, in append (≈ time) order."""
        return self._read_jsonl(self.root / self.RUNS)

    def run_ids(self) -> List[str]:
        return [r["run_id"] for r in self.runs() if "run_id" in r]

    def run_count(self) -> int:
        return len(self.runs())

    def series_ids(self) -> List[str]:
        """Every series with at least one observation, sorted."""
        series_dir = self.root / "series"
        if not series_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".jsonl")].replace("@", "/")
            for p in series_dir.glob("*.jsonl")
        )

    def read_series(self, series_id: str) -> List[dict]:
        """All observations of one series, in append order."""
        return self._read_jsonl(self._series_path(series_id))

    def values(self, series_id: str) -> List[float]:
        """The normalized values of one series, in append order."""
        return [
            float(r["value"])
            for r in self.read_series(series_id)
            if isinstance(r.get("value"), (int, float))
        ]

    def runs_by_id(self) -> Dict[str, dict]:
        return {r["run_id"]: r for r in self.runs() if "run_id" in r}

    def __repr__(self) -> str:
        return (
            f"<TrendStore {self.root} runs={self.run_count()} "
            f"series={len(self.series_ids())}>"
        )
