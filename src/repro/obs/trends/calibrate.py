"""Machine-speed calibration shared by the bench gate and the trend store.

All cross-machine comparisons in this repo divide wall-clock seconds by
the best-of-N duration of one fixed pure-Python spin loop.  The loop
body must never change: the committed ``BENCH_simperf.json`` baseline
and every recorded trend row are expressed in units of it.
"""

from __future__ import annotations

import math
import time

__all__ = ["Calibration", "spin_calibration"]

#: Iterations of the probe loop.  Fixed forever — see module docstring.
_LOOP_ITERATIONS = 2_000_000


class Calibration:
    """Machine speed probe: a fixed pure-Python spin loop.

    Sampled repeatedly, interleaved with the benchmarks, keeping the
    minimum — the best estimate of unloaded interpreter speed even when
    background load comes in bursts.
    """

    def __init__(self):
        self.best = math.inf
        self.sample()

    def sample(self) -> None:
        for _ in range(3):
            t0 = time.perf_counter()
            acc = 0
            for i in range(_LOOP_ITERATIONS):
                acc += i & 1023
            self.best = min(self.best, time.perf_counter() - t0)


def spin_calibration() -> float:
    """One-shot calibration: best spin-loop duration in seconds."""
    return Calibration().best
