"""SAGE skeleton (paper §5.3).

SAGE (SAIC's Adaptive Grid Eulerian hydrocode) is the paper's flagship
ASCI application: a medium-grained Eulerian AMR hydrocode whose
communication is "a nearest-neighbor pattern that uses non-blocking
communication operations followed by a reduce operation at the end of
each compute step" ([13], §5.3).

The skeleton reproduces the published characterization of the
``timing.input`` problem: gather/scatter-style boundary exchanges of
tens-to-hundreds of KB with grid neighbours, a compute step of tens of
milliseconds, and one 8-byte allreduce per step (the timestep control).
Under BCS the non-blocking exchanges hide entirely under the compute
step, and the tiny per-call overhead gives BCS its slight edge
(−0.42 % in Table 2).
"""

from __future__ import annotations

import numpy as np

from ..units import kib, ms
from .base import neighbors_3d


def sage(
    ctx,
    steps: int = 1200,
    step_compute: int = ms(100),
    boundary_bytes: int = kib(128),
    n_neighbors: int = 6,
):
    """One rank of the SAGE skeleton; returns the final dt estimate."""
    peers = neighbors_3d(ctx.rank, ctx.size)[:n_neighbors]
    dt = np.float64(1.0)
    for step in range(steps):
        # Post the boundary exchange, then overlap it with the step's
        # hydro computation (SAGE's gather/scatter structure).
        reqs = []
        for peer in peers:
            reqs.append(
                ctx.comm.isend(None, dest=peer, tag=step % 4, size=boundary_bytes)
            )
            reqs.append(
                ctx.comm.irecv(source=peer, tag=step % 4, size=boundary_bytes)
            )
        yield from ctx.compute(step_compute)
        yield from ctx.comm.waitall(reqs)
        # Timestep control: global min of the local Courant estimates.
        local_dt = np.float64(1.0 + ((ctx.rank * 31 + step * 17) % 100) / 1000.0)
        dt = yield from ctx.comm.allreduce(local_dt, "min")
    return float(dt)
