"""Workloads: the paper's synthetic benchmarks and applications."""

from .base import neighbors_2d, neighbors_3d, process_grid, ring_neighbors
from .nas import NAS_APPS
from .resilient import resilient_stencil
from .sage import sage
from .sweep3d import sweep3d_blocking, sweep3d_nonblocking
from .synthetic import barrier_benchmark, nearest_neighbor_benchmark

__all__ = [
    "NAS_APPS",
    "barrier_benchmark",
    "nearest_neighbor_benchmark",
    "neighbors_2d",
    "neighbors_3d",
    "process_grid",
    "resilient_stencil",
    "ring_neighbors",
    "sage",
    "sweep3d_blocking",
    "sweep3d_nonblocking",
]
