"""NAS Parallel Benchmark skeletons (NPB 2.4, class C characterization).

The paper runs IS, EP, CG, MG and LU (§5.3).  Each skeleton reproduces
the published communication pattern, blocking structure and granularity
of the class C problem; parameters are exposed so the harness can run
scaled-down instances (see EXPERIMENTS.md for the scaling rule).
"""

from .cg import cg
from .ep import ep
from .ft_ import ft
from .is_ import integer_sort
from .lu import lu
from .mg import mg

#: Benchmark registry: name -> app generator function.  IS/EP/CG/MG/LU
#: are the paper's five; FT is the extension enabled by our MPI-groups
#: support (the paper had to exclude it, §4.5).
NAS_APPS = {"IS": integer_sort, "EP": ep, "CG": cg, "MG": mg, "LU": lu, "FT": ft}

__all__ = ["NAS_APPS", "cg", "ep", "ft", "integer_sort", "lu", "mg"]
