"""NPB FT (3D FFT) skeleton — beyond the paper's evaluation.

The paper could only run five NPB codes because "BCS-MPI does not
support MPI groups yet" (§4.5); FT is one of the excluded three.  This
implementation *does* support communicator splitting, so FT is included
as an extension workload: per iteration, a 3D FFT performs local 1D
FFTs (compute) and a global transpose — an MPI_Alltoall over row/column
sub-communicators, the heaviest collective pattern in the suite.

Class C: 512x512x512 complex grid, 20 iterations.
"""

from __future__ import annotations

import math

import numpy as np

from ...units import ms


def ft(
    ctx,
    iterations: int = 20,
    grid_points: int = 512,
    flop_ns_per_point: float = 230.0,
):
    """One rank of FT; returns the checksum stand-in.

    Uses a row/column decomposition over sub-communicators when the
    rank count allows a 2D split, falling back to the world
    communicator otherwise.
    """
    total_points = grid_points**3
    local_points = total_points // ctx.size
    fft_compute = int(local_points * flop_ns_per_point)
    # Transpose volume: the whole local slab is exchanged.
    slab_bytes = local_points * 16  # complex128

    # Row sub-communicators (the NPB 2D layout), if size factorizes.
    rows = int(math.isqrt(ctx.size))
    while rows > 1 and ctx.size % rows:
        rows -= 1
    if rows > 1:
        row_members = [
            r for r in range(ctx.size) if r // (ctx.size // rows) == ctx.rank // (ctx.size // rows)
        ]
        comm = ctx.comm.split(row_members)
        assert comm is not None
    else:
        comm = ctx.comm

    checksum = np.float64(0.0)
    pair_bytes = max(slab_bytes // comm.size, 16)
    for it in range(iterations):
        # Local 1D FFT passes.
        yield from ctx.compute(fft_compute)
        # Global transpose: personalized all-to-all inside the row comm.
        reqs = []
        for peer in range(comm.size):
            if peer == comm.rank:
                continue
            reqs.append(comm.isend(None, dest=peer, tag=it, size=pair_bytes))
            reqs.append(comm.irecv(source=peer, tag=it, size=pair_bytes))
        yield from comm.waitall(reqs)
        # Second FFT pass along the transposed axis.
        yield from ctx.compute(fft_compute)
        # Global checksum over the *world* communicator.
        checksum = yield from ctx.comm.allreduce(
            np.float64(1.0 / (it + 1) + ctx.rank * 1e-9), "sum"
        )
    return float(checksum)
