"""NPB CG (Conjugate Gradient) skeleton.

CG finds the smallest eigenvalue of a sparse matrix by repeated CG
solves.  Per inner iteration the partitioned mat-vec exchanges vector
segments with the transpose partner(s) using *consecutive blocking
calls* — exactly the pattern §5.3 blames for CG's 10.83 % slowdown under
BCS ("several consecutive blocking calls inside a loop which introduce a
considerable delay, since no overlap between computation and
communication is possible for several time slices") — followed by two
8-byte dot-product reductions.

Class C: naa = 150 000, 75 outer iterations x 25 CG iterations.
"""

from __future__ import annotations

import math

import numpy as np

from ...units import kib, ms


def _transpose_partner(rank: int, size: int) -> int:
    """Partner in the row/column transpose exchange (an involution).

    NPB CG lays ranks on a 2^k grid and exchanges with the transposed
    position (an XOR pairing).  For non-power-of-two counts (the paper's
    62-process runs) we fall back to mirror pairing, which is still an
    involution — partner(partner(r)) == r — so the blocking exchange
    cannot deadlock.
    """
    if size >= 2 and size & (size - 1) == 0:
        return rank ^ (size >> 1)
    return (size - 1) - rank


def cg(
    ctx,
    outer_iterations: int = 75,
    inner_iterations: int = 25,
    naa: int = 150_000,
    flop_ns_per_row: float = 7450.0,
):
    """One rank of CG; returns the final residual stand-in.

    Per inner iteration: the NPB transpose exchange (MPI_Irecv +
    blocking MPI_Send + MPI_Wait — the blocking structure §5.3 calls
    out) and the two dot-product allreduces.
    """
    partner = _transpose_partner(ctx.rank, ctx.size)
    seg_bytes = max((naa // max(int(math.isqrt(ctx.size)), 1)) * 8, 64)
    step_compute = int(naa * flop_ns_per_row / ctx.size)
    rho = np.float64(1.0)

    for _outer in range(outer_iterations):
        for it in range(inner_iterations):
            yield from ctx.compute(step_compute)
            if partner != ctx.rank:
                # NPB CG's transpose exchange: irecv, blocking send, wait.
                req = ctx.comm.irecv(source=partner, tag=it, size=seg_bytes)
                yield from ctx.comm.send(None, dest=partner, tag=it, size=seg_bytes)
                yield from ctx.comm.wait(req)
            # Two dot products per CG iteration.
            rho = yield from ctx.comm.allreduce(np.float64(1.0 / (it + 1)), "sum")
            _alpha = yield from ctx.comm.allreduce(np.float64(0.5), "sum")
    return float(rho)
