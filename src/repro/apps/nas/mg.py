"""NPB MG (Multigrid) skeleton.

MG runs V-cycles on a 512^3 (class C) grid: at each level the ranks
exchange face halos with their grid neighbours (non-blocking receives +
buffered sends, i.e. overlappable), with message sizes shrinking by 4x
per level, then smooth/restrict (compute).  Coarse-grained and mostly
non-blocking, MG sits at a moderate 4.37 % in Table 2 — dominated by the
runtime-initialization share plus a small quantization cost on the tiny
coarse-level messages.
"""

from __future__ import annotations

import math

import numpy as np

from ...units import ms
from ..base import neighbors_2d
from .base_helpers import halo_bytes_for_level


def mg(
    ctx,
    iterations: int = 20,
    levels: int = 8,
    top_halo_bytes: int | None = None,
    level_compute_top: int = ms(650),
):
    """One rank of MG; V-cycle down and up per iteration."""
    peers = neighbors_2d(ctx.rank, ctx.size)
    if top_halo_bytes is None:
        top_halo_bytes = halo_bytes_for_level(512, ctx.size)

    for it in range(iterations):
        # Down-sweep (restrict) and up-sweep (prolongate): halos at every
        # level, compute proportional to the level's grid volume.
        for direction in (0, 1):
            for lvl in range(levels):
                level = lvl if direction == 0 else levels - 1 - lvl
                halo = max(top_halo_bytes >> (2 * level), 64)
                compute = max(level_compute_top >> (3 * level), ms(0.05))
                reqs = []
                for peer in peers:
                    reqs.append(
                        ctx.comm.isend(None, dest=peer, tag=level, size=halo)
                    )
                    reqs.append(
                        ctx.comm.irecv(source=peer, tag=level, size=halo)
                    )
                yield from ctx.compute(compute)
                yield from ctx.comm.waitall(reqs)
        # Residual norm check each iteration.
        _norm = yield from ctx.comm.allreduce(np.float64(1.0 / (it + 1)), "sum")
    return it + 1
