"""Shared sizing helpers for the NAS skeletons."""

from __future__ import annotations

import math


def halo_bytes_for_level(grid_points: int, n_ranks: int, word: int = 8) -> int:
    """Face-halo size for a ``grid_points``^3 domain split across ranks.

    A 2D decomposition over the most-square grid gives each rank a
    pencil whose face is roughly ``(grid_points / sqrt(p))^2`` points.
    """
    if grid_points < 1 or n_ranks < 1:
        raise ValueError("positive sizes required")
    side = grid_points / math.sqrt(n_ranks)
    return max(int(side * side) * word, word)
