"""NPB LU (SSOR solver) skeleton.

LU applies symmetric successive over-relaxation to the Navier-Stokes
equations.  Each iteration performs a *lower-triangular* and an
*upper-triangular* wavefront sweep over the k-planes of a 2D-decomposed
pencil: at every k-plane step a rank blocking-receives thin boundary
strips from its two upstream neighbours, computes, and blocking-sends
downstream — small messages, fine grain, and the most blocking-call-dense
pattern of the suite.  Table 2's worst slowdown (15.04 %) belongs to LU
for exactly that reason.

Class C: 162^3 grid, 250 iterations.  The skeleton exposes the iteration
and k-block counts so the harness can run a scaled instance with the
same per-step structure.
"""

from __future__ import annotations

from ...units import kib, ms
from .base_helpers import halo_bytes_for_level
from ..sweep_helpers import wavefront_step_blocking


def lu(
    ctx,
    iterations: int = 250,
    kblocks: int = 16,
    step_compute: int = ms(12.5),
    strip_bytes: int | None = None,
):
    """One rank of LU: per iteration one lower and one upper sweep."""
    if strip_bytes is None:
        strip_bytes = max(halo_bytes_for_level(162, ctx.size) // 8, 256)

    for it in range(iterations):
        # Lower-triangular sweep: wavefront from the (0,0) corner.
        for kb in range(kblocks):
            yield from wavefront_step_blocking(
                ctx, direction=(1, 1), tag=it * 1000 + kb,
                compute=step_compute, message_bytes=strip_bytes,
            )
        # Upper-triangular sweep: wavefront from the opposite corner.
        for kb in range(kblocks):
            yield from wavefront_step_blocking(
                ctx, direction=(-1, -1), tag=it * 1000 + 500 + kb,
                compute=step_compute, message_bytes=strip_bytes,
            )
    return iterations
