"""NPB EP (Embarrassingly Parallel) skeleton.

EP generates Gaussian deviates and tallies them: pure computation with a
final pair of small reductions (the sums and the 10-bin annulus counts).
Class C is ≈2^32 pairs; on 62 one-GHz P-III CPUs that is ≈22 s of
computation per process.  Its BCS slowdown (5.35 % in Table 2) is almost
entirely the runtime initialization cost plus the Node Manager tax —
there is nothing else BCS could slow down.
"""

from __future__ import annotations

import numpy as np

from ...units import seconds


def ep(ctx, total_compute: int = seconds(22), chunks: int = 16):
    """One rank of EP: chunked computation, then the final reductions."""
    # The computation is chunked only so the skeleton has the same
    # scheduler-visible shape as the real code's blocking structure.
    per_chunk = total_compute // chunks
    for _ in range(chunks):
        yield from ctx.compute(per_chunk)

    # Final verification reductions: sx/sy sums and the annulus counts.
    sums = np.array([float(ctx.rank), float(ctx.rank) * 0.5])
    sums = yield from ctx.comm.allreduce(sums, "sum")
    counts = np.arange(10, dtype=np.float64) + ctx.rank
    counts = yield from ctx.comm.allreduce(counts, "sum")
    return float(sums[0] + counts[0])
