"""NPB IS (Integer Sort) skeleton.

IS bucket-sorts integer keys: each of the 10 + 1 iterations ranks the
local keys (compute), allreduces the bucket-size histogram, and
redistributes all keys with MPI_Alltoallv.  Class C is 2^27 keys; the
paper measures ≈12 s total on its configuration, which is why IS "pays a
relatively high price for the overhead of initializing the BCS-MPI
runtime system" (§5.3) — the 10.14 % slowdown of Table 2 is mostly that
fixed cost amortized over a short run.
"""

from __future__ import annotations

import numpy as np

from ...units import kib, ms


def integer_sort(
    ctx,
    iterations: int = 11,
    total_keys: int = 2**27,
    rank_compute_per_key_ns: float = 165.0,
):
    """One rank of IS for the class-C-like problem."""
    n_local = total_keys // ctx.size
    # Key ranking: a few passes over the local keys.
    rank_compute = int(n_local * rank_compute_per_key_ns)
    # Alltoallv: every pair exchanges its bucket slice (4-byte keys).
    pair_bytes = max((n_local // ctx.size) * 4, 1)

    for it in range(iterations):
        yield from ctx.compute(rank_compute)
        # Bucket-size histogram.
        hist = np.full(1024, float(ctx.rank + it), dtype=np.float64)
        hist = yield from ctx.comm.allreduce(hist, "sum")
        # Key redistribution: personalized all-to-all of bucket slices.
        reqs = []
        for peer in range(ctx.size):
            if peer == ctx.rank:
                continue
            reqs.append(ctx.comm.isend(None, dest=peer, tag=it, size=pair_bytes))
            reqs.append(ctx.comm.irecv(source=peer, tag=it, size=pair_bytes))
        yield from ctx.comm.waitall(reqs)
    # Full verification pass.
    yield from ctx.compute(rank_compute)
    yield from ctx.comm.barrier()
    return float(hist[0])
