"""SWEEP3D skeleton (paper §5.4).

SWEEP3D is a deterministic Sn particle-transport wavefront code: a 2D
process grid sweeps pipelined wavefronts across the domain from each of
8 octant corners.  Each cell-step receives boundary angular fluxes from
its upstream neighbours (north/west for a ++ sweep), computes for ≈3.5 ms
(the paper's measured grain), and forwards to its downstream neighbours.

Two variants, exactly as in §5.4:

- :func:`sweep3d_blocking` — the original code: matched MPI_Send/MPI_Recv
  pairs.  Under BCS every blocking call stalls ~1.5 slices, and the
  stalls accumulate along the pipeline: ≈30 % slowdown in the paper.
- :func:`sweep3d_nonblocking` — the paper's <50-line transform: pairs
  replaced by MPI_Isend/MPI_Irecv with an MPI_Waitall at the end of each
  step, overlapping the slice latency with the computation.
"""

from __future__ import annotations

from ..units import kib, ms, us
from .sweep_helpers import wavefront_peers

#: The eight sweep directions (sign of i-sweep, sign of j-sweep).
OCTANTS = [(1, 1), (1, -1), (-1, 1), (-1, -1)] * 2


def sweep3d_blocking(
    ctx,
    octants: int = 8,
    kblocks: int = 4,
    step_compute: int = ms(3.5),
    message_bytes: int = kib(6),
):
    """Original SWEEP3D: blocking receives before, blocking sends after
    each cell-step."""
    for oct_idx in range(octants):
        direction = OCTANTS[oct_idx % len(OCTANTS)]
        upstream, downstream = wavefront_peers(ctx.rank, ctx.size, direction)
        for kb in range(kblocks):
            tag = oct_idx * 100 + kb
            for peer in upstream:
                yield from ctx.comm.recv(source=peer, tag=tag, size=message_bytes)
            yield from ctx.compute(step_compute)
            for peer in downstream:
                yield from ctx.comm.send(None, dest=peer, tag=tag, size=message_bytes)


def sweep3d_nonblocking(
    ctx,
    octants: int = 8,
    kblocks: int = 4,
    step_compute: int = ms(3.5),
    message_bytes: int = kib(6),
):
    """The paper's transform: Isend/Irecv + Waitall *at the end* of each
    step (§5.4: "we replaced every matching pair of MPI_Send/MPI_Recv
    with MPI_Isend/MPI_Irecv and added MPI_Waitall at the end").

    The step computes on the previously received boundary data while the
    current exchange is in flight, so the slice latency hides entirely
    under the 3.5 ms of work — the lagged pipeline that lets BCS match
    (and slightly beat) the production MPI in Fig. 11(b).
    """
    for oct_idx in range(octants):
        direction = OCTANTS[oct_idx % len(OCTANTS)]
        upstream, downstream = wavefront_peers(ctx.rank, ctx.size, direction)

        for kb in range(kblocks):
            tag = oct_idx * 100 + kb
            reqs = [
                ctx.comm.irecv(source=peer, tag=tag, size=message_bytes)
                for peer in upstream
            ] + [
                ctx.comm.isend(None, dest=peer, tag=tag, size=message_bytes)
                for peer in downstream
            ]
            yield from ctx.compute(step_compute)
            yield from ctx.comm.waitall(reqs)
