"""The paper's two synthetic benchmarks (§5.2).

1. *Computation and barrier*: every process computes for a parametric
   amount of time and globally synchronizes, in a loop (Figures 8a/8b).
2. *Computation and nearest-neighbour communication*: every process
   computes, exchanges a fixed number of non-blocking point-to-point
   messages with a set of neighbours, and waits for completion, in a
   loop (Figures 8c/8d; the paper uses 4 neighbours and 4 KB messages).
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import derive_seed
from ..units import kib, ms
from .base import exchange_nonblocking, neighbors_2d


def _jittered(ctx, granularity: int, jitter: float):
    """Per-iteration compute times with a little per-rank jitter.

    Real compute phases never hit the exact nominal duration (cache
    effects, TLB misses); without this the loop phase-locks to the slice
    boundary and every blocking call lands on its worst-case delay
    instead of the paper's 1.5-slice average.
    """
    if jitter <= 0.0:
        while True:
            yield granularity
    rng = np.random.default_rng(derive_seed(ctx.rank, "synthetic-jitter"))
    while True:
        yield max(int(granularity * (1.0 + rng.uniform(-jitter, jitter))), 1)


def barrier_benchmark(
    ctx,
    granularity: int = ms(10),
    iterations: int = 20,
    jitter: float = 0.05,
):
    """Compute ``granularity`` ns then MPI_Barrier, ``iterations`` times."""
    grains = _jittered(ctx, granularity, jitter)
    for _ in range(iterations):
        yield from ctx.compute(next(grains))
        yield from ctx.comm.barrier()


def nearest_neighbor_benchmark(
    ctx,
    granularity: int = ms(10),
    iterations: int = 20,
    n_neighbors: int = 4,
    message_bytes: int = kib(4),
    jitter: float = 0.05,
):
    """Compute, exchange non-blocking messages with neighbours, waitall."""
    peers = neighbors_2d(ctx.rank, ctx.size)[:n_neighbors]
    grains = _jittered(ctx, granularity, jitter)
    for it in range(iterations):
        yield from ctx.compute(next(grains))
        yield from exchange_nonblocking(ctx, peers, message_bytes, tag=it % 2)
