"""Shared workload helpers.

Applications are generator functions ``app(ctx, **params)`` run once per
rank on an :class:`repro.mpi.context.AppContext`.  This module provides
the common geometry/stencil utilities the paper's workloads need.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple


def process_grid(size: int) -> Tuple[int, int]:
    """Most-square 2D factorization of ``size`` (px >= py)."""
    if size < 1:
        raise ValueError("size must be positive")
    py = int(math.isqrt(size))
    while size % py:
        py -= 1
    px = size // py
    return (px, py) if px >= py else (py, px)


def grid_coords(rank: int, px: int, py: int) -> Tuple[int, int]:
    """(i, j) position of ``rank`` in a px x py row-major grid."""
    if not 0 <= rank < px * py:
        raise IndexError(f"rank {rank} outside {px}x{py} grid")
    return rank // py, rank % py


def grid_rank(i: int, j: int, px: int, py: int) -> int:
    """Inverse of :func:`grid_coords`."""
    return i * py + j


def neighbors_2d(rank: int, size: int, periodic: bool = True) -> List[int]:
    """Up/down/left/right neighbours on the most-square grid over ``size``.

    ``periodic`` wraps at the edges (torus); otherwise boundary ranks get
    fewer neighbours.  The result is deduplicated and never contains
    ``rank`` itself.
    """
    px, py = process_grid(size)
    i, j = grid_coords(rank, px, py)
    out = []
    for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        ni, nj = i + di, j + dj
        if periodic:
            ni, nj = ni % px, nj % py
        elif not (0 <= ni < px and 0 <= nj < py):
            continue
        nb = grid_rank(ni, nj, px, py)
        if nb != rank and nb not in out:
            out.append(nb)
    return out


def process_grid_3d(size: int) -> Tuple[int, int, int]:
    """Most-cubic 3D factorization of ``size`` (px >= py >= pz)."""
    if size < 1:
        raise ValueError("size must be positive")
    best = (size, 1, 1)
    for pz in range(1, int(round(size ** (1 / 3))) + 2):
        if size % pz:
            continue
        rest = size // pz
        for py in range(pz, int(math.isqrt(rest)) + 1):
            if rest % py:
                continue
            px = rest // py
            if px >= py >= pz:
                best = (px, py, pz)
    return best


def neighbors_3d(rank: int, size: int, periodic: bool = True) -> List[int]:
    """The six face neighbours on the most-cubic 3D grid over ``size``."""
    px, py, pz = process_grid_3d(size)
    i = rank // (py * pz)
    j = (rank // pz) % py
    k = rank % pz
    out = []
    for di, dj, dk in (
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ):
        ni, nj, nk = i + di, j + dj, k + dk
        if periodic:
            ni, nj, nk = ni % px, nj % py, nk % pz
        elif not (0 <= ni < px and 0 <= nj < py and 0 <= nk < pz):
            continue
        nb = (ni * py + nj) * pz + nk
        if nb != rank and nb not in out:
            out.append(nb)
    return out


def ring_neighbors(rank: int, size: int) -> Tuple[int, int]:
    """(left, right) neighbours on a ring."""
    return ((rank - 1) % size, (rank + 1) % size)


def log2_ceil(n: int) -> int:
    """ceil(log2(n)) with log2_ceil(1) == 0."""
    if n < 1:
        raise ValueError("n must be positive")
    return (n - 1).bit_length()


def exchange_nonblocking(ctx, peers, send_bytes: int, tag: int = 0):
    """Post isend/irecv with every peer and waitall (the bulk-synchronous
    exchange step used all over the paper's workloads)."""
    reqs = []
    for peer in peers:
        reqs.append(ctx.comm.isend(None, dest=peer, tag=tag, size=send_bytes))
        reqs.append(ctx.comm.irecv(source=peer, tag=tag, size=send_bytes))
    yield from ctx.comm.waitall(reqs)


def exchange_blocking(ctx, peers, send_bytes: int, tag: int = 0):
    """Matched blocking send/recv with every peer, ordered to avoid
    deadlock (lower rank sends first)."""
    for peer in peers:
        if ctx.rank < peer:
            yield from ctx.comm.send(None, dest=peer, tag=tag, size=send_bytes)
            yield from ctx.comm.recv(source=peer, tag=tag, size=send_bytes)
        else:
            yield from ctx.comm.recv(source=peer, tag=tag, size=send_bytes)
            yield from ctx.comm.send(None, dest=peer, tag=tag, size=send_bytes)
