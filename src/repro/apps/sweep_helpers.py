"""Wavefront step primitives shared by SWEEP3D and LU."""

from __future__ import annotations

from .base import grid_coords, grid_rank, process_grid


def wavefront_peers(rank: int, size: int, direction):
    """(upstream, downstream) neighbour lists for a 2D wavefront sweep.

    ``direction`` is the (di, dj) sign pair of the sweep; upstream
    neighbours are the ones whose data this rank consumes.
    """
    di, dj = direction
    px, py = process_grid(size)
    i, j = grid_coords(rank, px, py)
    upstream, downstream = [], []
    if 0 <= i - di < px:
        upstream.append(grid_rank(i - di, j, px, py))
    if 0 <= i + di < px:
        downstream.append(grid_rank(i + di, j, px, py))
    if 0 <= j - dj < py:
        upstream.append(grid_rank(i, j - dj, px, py))
    if 0 <= j + dj < py:
        downstream.append(grid_rank(i, j + dj, px, py))
    return upstream, downstream


def wavefront_step_blocking(ctx, direction, tag, compute, message_bytes):
    """One pipelined cell-step: blocking recvs, compute, blocking sends."""
    upstream, downstream = wavefront_peers(ctx.rank, ctx.size, direction)
    for peer in upstream:
        yield from ctx.comm.recv(source=peer, tag=tag, size=message_bytes)
    yield from ctx.compute(compute)
    for peer in downstream:
        yield from ctx.comm.send(None, dest=peer, tag=tag, size=message_bytes)
