"""A restartable workload for the fault-tolerance experiments.

Implements the restartable-application contract of
:mod:`repro.ft.recovery`: accepts ``start_step``/``total_steps``, and
reports durable progress to the checkpoint service after every step.
Structurally it is the SAGE-like pattern (non-blocking stencil + one
allreduce per step), which makes the checkpoint/restart overhead
numbers directly comparable to the Table 2 workloads.
"""

from __future__ import annotations

import numpy as np

from ..units import kib, ms
from .base import neighbors_2d


def resilient_stencil(
    ctx,
    total_steps: int = 20,
    start_step: int = 0,
    ft=None,
    step_compute: int = ms(5),
    boundary_bytes: int = kib(8),
):
    """Checkpoint-aware bulk-synchronous stencil; returns steps done."""
    peers = neighbors_2d(ctx.rank, ctx.size)
    if ft is not None:
        ft.report(ctx, start_step)
    for step in range(start_step, total_steps):
        reqs = []
        for peer in peers:
            reqs.append(
                ctx.comm.isend(None, dest=peer, tag=step % 8, size=boundary_bytes)
            )
            reqs.append(
                ctx.comm.irecv(source=peer, tag=step % 8, size=boundary_bytes)
            )
        yield from ctx.compute(step_compute)
        yield from ctx.comm.waitall(reqs)
        _ = yield from ctx.comm.allreduce(np.float64(step), "max")
        if ft is not None:
            ft.report(ctx, step + 1)
    return total_steps
