"""Fault tolerance on slice boundaries (the paper's §6 direction)."""

from .checkpoint import CheckpointConfig, CheckpointRecord, CheckpointService
from .failure import FailureEvent, FailureInjector
from .recovery import RecoveryManager, RecoveryReport

__all__ = [
    "CheckpointConfig",
    "CheckpointRecord",
    "CheckpointService",
    "FailureEvent",
    "FailureInjector",
    "RecoveryManager",
    "RecoveryReport",
]
