"""Failure injection.

Kills a compute node at a scheduled time: every job with a rank on that
node is torn down (all its processes interrupted, its runtime state
purged) — the fail-stop model the paper's fault-tolerance direction
assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime


@dataclass(frozen=True)
class FailureEvent:
    """One injected fail-stop failure."""

    time: int
    node_id: int


class FailureInjector:
    """Schedules fail-stop node failures against a BCS runtime."""

    def __init__(self, runtime: "BcsRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.injected: List[FailureEvent] = []
        self.dead_nodes: set[int] = set()
        #: Callbacks invoked with the node id at kill time (e.g. to stop
        #: the node acknowledging heartbeats).
        self.on_kill: List = []

    def kill_node_at(self, node_id: int, when: int) -> None:
        """Schedule node ``node_id`` to fail at absolute time ``when``."""
        if when < self.env.now:
            raise ValueError("failure scheduled in the past")

        def injector():
            if when > self.env.now:
                yield self.env.timeout(when - self.env.now)
            self.kill_node(node_id)

        self.env.process(injector(), name=f"fail.n{node_id}")

    def kill_node(self, node_id: int) -> None:
        """Fail a node immediately (fail-stop)."""
        self.dead_nodes.add(node_id)
        self.injected.append(FailureEvent(self.env.now, node_id))
        self.runtime.stats["node_failures"] += 1
        for hook in list(self.on_kill):
            hook(node_id)
        for job in list(self.runtime.jobs.values()):
            if not job.terminal and node_id in job.nodes:
                self.runtime.kill_job(job, cause=f"node {node_id} failed")
