"""Coordinated checkpointing on slice boundaries.

The paper argues (§1, §6) that BCS's determinism "facilitates the
implementation of checkpointing": at the beginning of every time slice
the communication state of all processes is globally known, so a
checkpoint taken there needs no message logging or channel draining —
the runtime state can simply be discarded and rebuilt.

:class:`CheckpointService` rides the runtime's slice hook: every
``interval`` it quiesces each node (grabs all CPUs, which naturally
waits out the in-flight compute quantum), charges the time to write the
per-node memory image, and records the job's progress watermark (the
minimum step any rank has reported).  Recovery restarts from that
watermark — see :mod:`repro.ft.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..units import bw_time, mib, seconds

if TYPE_CHECKING:  # pragma: no cover
    from ..bcs.runtime import BcsRuntime
    from ..storm.job import Job


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint policy parameters."""

    #: Time between checkpoints (aligned down to slice boundaries).
    interval: int = seconds(2)
    #: Per-node memory image written at each checkpoint.
    image_bytes: int = mib(128)
    #: Bandwidth to stable storage (local disk / buddy node), bytes/s.
    storage_bandwidth: float = 100e6

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.image_bytes < 0 or self.storage_bandwidth <= 0:
            raise ValueError("invalid image size / bandwidth")

    @property
    def write_time(self) -> int:
        """Time (ns) to write one node's image."""
        return bw_time(self.image_bytes, self.storage_bandwidth)


@dataclass(frozen=True)
class CheckpointRecord:
    """One completed coordinated checkpoint."""

    time: int
    slice_no: int
    #: job_id -> progress watermark (min reported step across ranks).
    watermarks: dict


class CheckpointService:
    """Slice-synchronous coordinated checkpointing."""

    def __init__(self, runtime: "BcsRuntime", config: Optional[CheckpointConfig] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.config = config or CheckpointConfig()
        #: (job_id, rank) -> last step the application reported durable.
        self.progress: Dict[tuple, int] = {}
        self.checkpoints: List[CheckpointRecord] = []
        self.total_pause_ns = 0
        self._last = 0
        self._busy = False
        runtime.on_slice_start.append(self._tick)

    # -- application side -------------------------------------------------------

    def report(self, ctx, step: int) -> None:
        """Record that ``ctx``'s rank has durably finished ``step`` steps.

        Restartable applications call this once per completed step; the
        checkpoint watermark is the minimum across ranks.
        """
        self.progress[(ctx.job.id, ctx.rank)] = step

    def watermark(self, job: "Job") -> int:
        """Current min-progress of a job (0 if nothing reported)."""
        steps = [
            self.progress.get((job.id, r), 0) for r in range(job.n_ranks)
        ]
        return min(steps) if steps else 0

    def restart_point(self, job: "Job") -> int:
        """Watermark of the last completed checkpoint covering ``job``."""
        for record in reversed(self.checkpoints):
            if job.id in record.watermarks:
                return record.watermarks[job.id]
        return 0

    # -- runtime side ------------------------------------------------------------

    def _tick(self, slice_no: int) -> None:
        if self._busy or self.env.now - self._last < self.config.interval:
            return
        live = [j for j in self.runtime.jobs.values() if not j.terminal]
        if not live:
            return
        self._busy = True
        self._last = self.env.now
        self.env.process(self._checkpoint(slice_no, live), name="ckpt")

    def _checkpoint(self, slice_no: int, jobs):
        t0 = self.env.now
        nodes = sorted({n for job in jobs for n in job.nodes})
        # Quiesce: one holder per node grabs every CPU, so application
        # compute pauses while the image is written.
        holders = [
            self.env.process(self._hold_node(node_id), name=f"ckpt.n{node_id}")
            for node_id in nodes
        ]
        yield self.env.all_of(holders)
        self.checkpoints.append(
            CheckpointRecord(
                time=self.env.now,
                slice_no=slice_no,
                watermarks={job.id: self.watermark(job) for job in jobs},
            )
        )
        self.total_pause_ns += self.env.now - t0
        self.runtime.stats["checkpoints"] += 1
        self._busy = False

    def _hold_node(self, node_id: int):
        node = self.runtime.cluster.node(node_id)
        capacity = node.cpu.capacity
        yield node.cpu.request(capacity)
        try:
            yield self.env.timeout(self.config.write_time)
        finally:
            node.cpu.release(capacity)

    def __repr__(self) -> str:
        return (
            f"<CheckpointService n={len(self.checkpoints)} "
            f"interval={self.config.interval}>"
        )
