"""Recovery orchestration: checkpoint/restart of a restartable job.

The restartable-application contract: the app generator accepts a
``start_step`` parameter and (if ``ft`` is in its params) calls
``ft.report(ctx, step)`` after each completed step.  On failure the
orchestrator waits out the detection delay (one heartbeat period) and a
reboot delay, then relaunches the job from the last checkpoint's
watermark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..bcs.runtime import BcsRuntime
from ..storm.heartbeat import HeartbeatService
from ..storm.job import Job, JobSpec
from ..units import ms, seconds
from .checkpoint import CheckpointConfig, CheckpointService
from .failure import FailureInjector


@dataclass
class RecoveryReport:
    """Outcome of a run-with-failures experiment."""

    completed: bool
    total_ns: int
    restarts: int
    checkpoints: int
    checkpoint_pause_ns: int
    lost_steps: int
    failures: int


class RecoveryManager:
    """Runs a restartable job to completion across injected failures."""

    def __init__(
        self,
        runtime: BcsRuntime,
        checkpoint_config: Optional[CheckpointConfig] = None,
        detection_delay: int = ms(10),
        reboot_delay: int = seconds(0.5),
        use_heartbeat_detection: bool = False,
        heartbeat_period: int = ms(10),
    ):
        self.runtime = runtime
        self.env = runtime.env
        self.checkpoints = CheckpointService(runtime, checkpoint_config)
        self.injector = FailureInjector(runtime)
        self.detection_delay = detection_delay
        self.reboot_delay = reboot_delay
        self.heartbeat: Optional[HeartbeatService] = None
        if use_heartbeat_detection:
            # Real detection: the MM's heartbeat Compare-And-Write stops
            # seeing the dead node's acks; recovery proceeds only once a
            # beat is actually missed (instead of the fixed delay).
            self.heartbeat = HeartbeatService(
                runtime.core,
                runtime.cluster.management_node.id,
                [n.id for n in runtime.cluster.compute_nodes],
                period=heartbeat_period,
            )
            self.heartbeat.start()
            self.injector.on_kill.append(self.heartbeat.fail)

    def _await_detection(self, node_id: int):
        """Generator: block until the failure is actually detected."""
        if self.heartbeat is None:
            yield self.env.timeout(self.detection_delay)
            return
        while self.heartbeat.stats.missed.get(node_id, 0) == 0:
            yield self.env.timeout(self.heartbeat.period // 2)

    def run_to_completion(
        self,
        app: Callable,
        n_ranks: int,
        total_steps: int,
        params: Optional[dict] = None,
        failures: Optional[List[tuple]] = None,
        max_restarts: int = 10,
    ) -> RecoveryReport:
        """Drive ``app`` to ``total_steps`` across failures.

        ``failures`` is a list of (time_ns, node_id) fail-stop events.
        The app is launched with ``start_step`` / ``total_steps`` /
        ``ft`` parameters per the restartable contract.
        """
        for when, node in failures or []:
            self.injector.kill_node_at(node, when)

        t0 = self.env.now
        start_step = 0
        restarts = 0
        lost_steps = 0

        while True:
            spec = JobSpec(
                app=app,
                n_ranks=n_ranks,
                name=f"ft-job.r{restarts}",
                params={
                    **(params or {}),
                    "start_step": start_step,
                    "total_steps": total_steps,
                    "ft": self.checkpoints,
                },
            )
            job = self.runtime.launch(spec)
            # Prime the progress watermark so a checkpoint taken before
            # the ranks' first report doesn't roll progress back to 0.
            for rank in range(n_ranks):
                self.checkpoints.progress[(job.id, rank)] = start_step
            outcome = self.env.any_of([job.done, job.failed])
            self.env.run(until=outcome)

            if job.complete:
                return RecoveryReport(
                    completed=True,
                    total_ns=self.env.now - t0,
                    restarts=restarts,
                    checkpoints=len(self.checkpoints.checkpoints),
                    checkpoint_pause_ns=self.checkpoints.total_pause_ns,
                    lost_steps=lost_steps,
                    failures=len(self.injector.injected),
                )

            # Failure path: roll back to the last checkpoint watermark.
            restarts += 1
            if restarts > max_restarts:
                raise RuntimeError("exceeded max_restarts; failures outpace progress")
            resume_from = self.checkpoints.restart_point(job)
            lost_steps += max(self.checkpoints.watermark(job) - resume_from, 0)
            start_step = resume_from
            # Detection (fixed delay or a real missed heartbeat), then
            # node reboot, before relaunch.
            failed_node = (
                self.injector.injected[-1].node_id if self.injector.injected else -1
            )
            detect = self.env.process(
                self._await_detection(failed_node), name="ft.detect"
            )
            self.env.run(until=detect)
            self.env.run(until=self.env.timeout(self.reboot_delay))
            if self.heartbeat is not None:
                # The rebooted node acknowledges again.
                self.heartbeat._dead.discard(failed_node)
