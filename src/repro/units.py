"""Time and size units.

All simulation time is kept in **integer nanoseconds** so that runs are
bit-deterministic: floating-point time accumulates rounding that differs
between summation orders, which would make the globally-coscheduled
protocol (whose whole point is determinism) nondeterministic.

All sizes are in **bytes**.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000


def ns(t: float) -> int:
    """Convert a nanosecond quantity to integer time."""
    return int(round(t))


def us(t: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(t * US))


def ms(t: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(t * MS))


def seconds(t: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(t * S))


def to_seconds(t: int) -> float:
    """Convert integer nanoseconds to float seconds (reporting only)."""
    return t / S


def to_us(t: int) -> float:
    """Convert integer nanoseconds to float microseconds (reporting only)."""
    return t / US


def to_ms(t: int) -> float:
    """Convert integer nanoseconds to float milliseconds (reporting only)."""
    return t / MS


def fmt_time(t: int) -> str:
    """Render a time span with an appropriate unit for humans."""
    if t < 10 * US:
        return f"{t} ns"
    if t < 10 * MS:
        return f"{t / US:.2f} us"
    if t < 10 * S:
        return f"{t / MS:.2f} ms"
    return f"{t / S:.3f} s"


# --- sizes -----------------------------------------------------------------

B = 1
KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def kib(n: float) -> int:
    """Convert KiB to bytes."""
    return int(round(n * KiB))


def mib(n: float) -> int:
    """Convert MiB to bytes."""
    return int(round(n * MiB))


def fmt_size(n: int) -> str:
    """Render a byte count with an appropriate unit for humans."""
    if n < 2 * KiB:
        return f"{n} B"
    if n < 2 * MiB:
        return f"{n / KiB:.1f} KiB"
    return f"{n / MiB:.2f} MiB"


def bw_time(size_bytes: int, bytes_per_second: float) -> int:
    """Time (ns) to move ``size_bytes`` at ``bytes_per_second``.

    Rounds up so that zero-cost transfers can only come from zero sizes.
    """
    if size_bytes <= 0:
        return 0
    ns_float = size_bytes * S / bytes_per_second
    t = int(ns_float)
    if ns_float > t:
        t += 1
    return t
