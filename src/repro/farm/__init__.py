"""``repro.farm``: parallel experiment execution with result caching.

The farm turns the paper's evaluation into a work-queue service (see
docs/FARM.md):

- :mod:`~repro.farm.points` — every figure/table decomposed into
  declarative, hashable :class:`PointSpec` units;
- :mod:`~repro.farm.pool` — a spawn-safe worker pool with per-point
  timeouts, bounded retries, and crash containment;
- :mod:`~repro.farm.store` — a content-addressed result store keyed by
  (point hash, code fingerprint);
- :mod:`~repro.farm.service` — orchestration + aggregation back into
  the exact rows the sequential generators produce;
- :mod:`~repro.farm.queue` — the distributed execution layer: durable
  job queue, HTTP submission API, lease-based workers
  (``run_farm(backend="queue")``, ``repro serve`` / ``repro worker``);
- :mod:`~repro.farm.cli` — the ``repro farm`` subcommand family.
"""

from .fingerprint import code_fingerprint, git_sha, result_key
from .points import (
    EXTENSION_FAMILIES,
    FAMILIES,
    FIGURE_FAMILIES,
    SCALING_FAMILIES,
    Family,
    PointSpec,
    execute_point,
    expand_family,
)
from .pool import PointOutcome, WorkerPool
from .service import FamilyResult, FarmReport, run_farm
from .store import ResultStore

__all__ = [
    "EXTENSION_FAMILIES",
    "FAMILIES",
    "FIGURE_FAMILIES",
    "Family",
    "FamilyResult",
    "FarmReport",
    "PointOutcome",
    "PointSpec",
    "ResultStore",
    "SCALING_FAMILIES",
    "WorkerPool",
    "code_fingerprint",
    "execute_point",
    "expand_family",
    "git_sha",
    "result_key",
    "run_farm",
]
