"""The point registry: every figure/table as declarative, hashable points.

A *point* is the smallest independently executable unit of the paper's
evaluation — one (app, backend-pair, ranks, config) tuple producing one
row of one table or figure.  Each :class:`Family` groups the points of
one figure/table and knows how to

- **expand** a family-specific options dict into the ordered list of
  param dicts the sequential generator in
  :mod:`repro.harness.experiments` would iterate over, and
- **execute** one param dict into exactly the row dict that generator
  would append.

Because the sequential generators are themselves comprehensions over
the same ``<family>_point`` functions, a farm run and an in-process run
produce byte-identical rows (asserted by ``tests/farm/test_determinism.py``).

Params must stay JSON-serializable: the canonical JSON encoding of
``(family, params)`` is the point's identity, and — combined with the
code fingerprint — its cache key (see docs/FARM.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..harness import experiments as E
from ..harness import extensions as X
from ..harness import scaling as S
from ..units import MiB

__all__ = [
    "ANALYSIS_FAMILIES",
    "EXTENSION_FAMILIES",
    "FAMILIES",
    "FIGURE_FAMILIES",
    "Family",
    "PointSpec",
    "SCALING_FAMILIES",
    "execute_point",
    "expand_family",
    "family_specs",
]


@dataclass(frozen=True)
class PointSpec:
    """One schedulable point: a family name plus canonical parameters."""

    family: str
    #: position of this point's row within the family's table.
    index: int
    #: canonical (sorted) parameter items; values are JSON-safe scalars.
    params: Tuple[Tuple[str, Any], ...]

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def key(self) -> str:
        """Canonical JSON identity (excludes ``index`` — the row position
        orders output but does not change what the point computes)."""
        return json.dumps(
            {"family": self.family, "params": self.params_dict},
            sort_keys=True,
            separators=(",", ":"),
        )

    def point_hash(self) -> str:
        """Stable content hash of the point's identity."""
        return hashlib.sha256(self.key().encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable id for progress lines and failure reports."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}[{inner}]"


def _canonical_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    # Round-trip through JSON so int/float/bool/str/None params hash the
    # same way regardless of how the expander spelled them.
    encoded = json.loads(json.dumps(dict(params)))
    if encoded != dict(params):
        raise ValueError(f"point params are not JSON-safe: {params!r}")
    return tuple(sorted(encoded.items()))


@dataclass(frozen=True)
class Family:
    """One figure/table: how to enumerate and execute its points."""

    name: str
    #: table title — identical to the one ``repro <name>`` prints.
    title: str
    #: options dict -> ordered list of param dicts (row order).
    expand: Callable[..., List[dict]]
    #: one param dict -> one row dict.
    execute: Callable[..., dict]
    #: option overrides for the reduced ``--preset smoke`` configuration.
    smoke: Mapping[str, Any]
    #: numeric row columns mirrored into the trend store as per-point
    #: gauges (``farm.row.<column>{family=...,point=...}``) so regression
    #: gating can watch row *values*, not just wall-clock durations.
    trend_columns: Tuple[str, ...] = ()

    def specs(self, options: Optional[Mapping[str, Any]] = None) -> List[PointSpec]:
        return [
            PointSpec(self.name, i, _canonical_params(p))
            for i, p in enumerate(self.expand(**dict(options or {})))
        ]


# --- expanders (must mirror the sequential generators' loop order) ----------


def _expand_table1(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32), payload: int = 1 * MiB
) -> List[dict]:
    return [
        dict(network=m, nodes=n, payload=payload)
        for m in E.TABLE1_NETWORKS
        for n in node_counts
    ]


def _expand_fig8_granularity(
    granularities_ms: Sequence[float] = (1, 2, 5, 10, 20, 50),
    n_ranks: int = E.FULL_MACHINE,
    iterations: int = 15,
) -> List[dict]:
    return [
        dict(granularity_ms=g, n_ranks=n_ranks, iterations=iterations)
        for g in granularities_ms
    ]


def _expand_fig8_procs(
    proc_counts: Sequence[int] = (4, 8, 16, 32, 48, 62),
    granularity_ms: float = 10,
    iterations: int = 15,
) -> List[dict]:
    return [
        dict(processes=p, granularity_ms=granularity_ms, iterations=iterations)
        for p in proc_counts
    ]


def _expand_table2(
    apps: Optional[Sequence[str]] = None,
    n_ranks: Optional[int] = None,
    scale: Optional[float] = None,
) -> List[dict]:
    return [
        dict(app=name, n_ranks=n_ranks, scale=scale)
        for name in (apps or E.APP_EXPERIMENTS)
    ]


def _expand_fig10(
    proc_counts: Sequence[int] = (8, 16, 32, 48, 62),
    scale: Optional[float] = 0.02,
) -> List[dict]:
    return [dict(processes=p, scale=scale) for p in proc_counts]


def _expand_fig11(
    proc_counts: Sequence[int] = (8, 16, 32, 48, 62),
    octants: int = 4,
    kblocks: int = 4,
) -> List[dict]:
    return [
        dict(processes=p, variant=v, octants=octants, kblocks=kblocks)
        for p in proc_counts
        for v in E.FIG11_VARIANTS
    ]


def _expand_ablation_timeslice(
    timeslices_us: Sequence[float] = (125, 250, 500, 1000, 2000),
    n_ranks: int = 16,
) -> List[dict]:
    return [dict(timeslice_us=ts, n_ranks=n_ranks) for ts in timeslices_us]


def _expand_ablation_buffered(n_ranks: int = 16) -> List[dict]:
    return [dict(buffered=b, n_ranks=n_ranks) for b in (True, False)]


def _expand_ablation_kernel(
    n_ranks: int = E.FULL_MACHINE,
    granularity_ms: float = 10,
    iterations: int = 15,
) -> List[dict]:
    return [
        dict(
            implementation=label,
            n_ranks=n_ranks,
            granularity_ms=granularity_ms,
            iterations=iterations,
        )
        for label in E.KERNEL_IMPLEMENTATIONS
    ]


# --- extension families (beyond the paper's evaluation) ----------------------


def _expand_ext_ft(
    rank_counts: Sequence[int] = (32,),
    iterations: int = 3,
    grid_points: int = 256,
) -> List[dict]:
    return [
        dict(n_ranks=n, iterations=iterations, grid_points=grid_points)
        for n in rank_counts
    ]


def _expand_ext_pfs_qos(
    schedulers: Sequence[str] = X.PFS_SCHEDULERS,
    n_ranks: int = 16,
    pfs_files: int = 24,
    pfs_file_kib: int = 4096,
    granularity_ms: float = 3,
    iterations: int = 12,
) -> List[dict]:
    return [
        dict(
            scheduler=s,
            with_pfs=w,
            n_ranks=n_ranks,
            pfs_files=pfs_files,
            pfs_file_kib=pfs_file_kib,
            granularity_ms=granularity_ms,
            iterations=iterations,
        )
        for s in schedulers
        for w in (False, True)
    ]


def _expand_ext_noise(
    scenarios: Sequence[str] = X.NOISE_SCENARIOS,
    n_ranks: int = 32,
    granularity_ms: float = 2,
    iterations: int = 30,
) -> List[dict]:
    return [
        dict(
            scenario=s,
            n_ranks=n_ranks,
            granularity_ms=granularity_ms,
            iterations=iterations,
        )
        for s in scenarios
    ]


# --- scaling study (simulator throughput; rows carry wall-clock fields) ------


def _expand_scaling1024(
    node_counts: Sequence[int] = (128, 256, 512, 1024),
    networks: Sequence[str] = S.SCALING_NETWORKS,
    active_ranks: int = 8,
    iterations: int = 60,
    granularity_us: float = 400.0,
) -> List[dict]:
    return [
        dict(
            network=m,
            n_nodes=n,
            active_ranks=active_ranks,
            iterations=iterations,
            granularity_us=granularity_us,
        )
        for m in networks
        for n in node_counts
    ]


def _expand_scaling16k(
    node_counts: Sequence[int] = (2048, 4096, 8192, 16384),
    networks: Sequence[str] = S.SCALING_NETWORKS,
    active_ranks: int = 32,
    iterations: int = 30,
    granularity_us: float = 400.0,
    message_kib: int = 4,
) -> List[dict]:
    return [
        dict(
            network=m,
            n_nodes=n,
            active_ranks=active_ranks,
            iterations=iterations,
            granularity_us=granularity_us,
            message_kib=message_kib,
        )
        for m in networks
        for n in node_counts
    ]


def _expand_scaling64k(
    node_counts: Sequence[int] = (2048, 8192, 16384, 65536),
    networks: Sequence[str] = S.SCALING_NETWORKS,
    active_ranks: int = 32,
    iterations: int = 30,
    granularity_us: float = 400.0,
    message_kib: int = 4,
) -> List[dict]:
    return [
        dict(
            network=m,
            n_nodes=n,
            active_ranks=active_ranks,
            iterations=iterations,
            granularity_us=granularity_us,
            message_kib=message_kib,
        )
        for m in networks
        for n in node_counts
    ]


# --- critical-path analysis family (blame composition per run) ---------------


def _expand_critpath(
    experiments: Sequence[str] = ("fig8", "fig8-p2p", "sweep3d"),
    n_ranks: int = 8,
    seed: int = 0,
) -> List[dict]:
    return [
        dict(experiment=e, n_ranks=n_ranks, seed=seed) for e in experiments
    ]


def _execute_critpath(experiment: str, n_ranks: int = 8, seed: int = 0) -> dict:
    # Imported lazily: the critpath analysis pulls in the full
    # observability stack, which plain figure points never need.
    from ..harness.obs_runs import critpath_point

    return critpath_point(experiment, n_ranks=n_ranks, seed=seed)


# --- selftest family (test hook: controllable success/hang/crash) -----------


def _expand_selftest(
    modes: Sequence[str] = ("ok", "ok", "ok", "ok"),
) -> List[dict]:
    return [dict(mode=m, value=i) for i, m in enumerate(modes)]


def _execute_selftest(mode: str = "ok", value: int = 0, sleep_s: float = 0.0) -> dict:
    """Farm test hook: a point that can succeed, error, crash, or hang."""
    if sleep_s:
        time.sleep(sleep_s)
    if mode == "error":
        raise RuntimeError(f"injected point failure (value={value})")
    if mode == "crash":
        os._exit(41)
    if mode == "hang":
        while True:  # wall-clock hang; only the pool's timeout ends this
            time.sleep(60)
    return {"mode": mode, "value": value, "doubled": value * 2}


# --- registry ---------------------------------------------------------------

#: Families of the paper's figures/tables, in ``repro all`` print order.
FIGURE_FAMILIES: Tuple[str, ...] = (
    "table1",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d",
    "table2",
    "fig10",
    "fig11",
    "ablation_timeslice",
    "ablation_buffered",
    "ablation_kernel",
)

#: Extension studies beyond the paper's evaluation (FT, PFS QoS, noise
#: coordination — see :mod:`repro.harness.extensions`).  Not part of the
#: default ``repro farm figures`` set; run them by name or with
#: ``--extensions``.
EXTENSION_FAMILIES: Tuple[str, ...] = ("ext_ft", "ext_pfs_qos", "ext_noise")

#: Simulator-throughput studies.  Their rows include *host wall-clock*
#: fields (slices/sec, speedup), so they are deliberately outside the
#: deterministic figure set and never part of ``repro farm figures``
#: defaults; run them by name (``repro farm figures scaling1024``).
SCALING_FAMILIES: Tuple[str, ...] = ("scaling1024", "scaling16k", "scaling64k")

#: Analysis families: deterministic derived metrics over instrumented
#: runs (critical-path blame composition).  Not in the default figure
#: set; run them by name (``repro farm figures critpath``) — their row
#: columns feed the trend store via ``Family.trend_columns``.
ANALYSIS_FAMILIES: Tuple[str, ...] = ("critpath",)

FAMILIES: Dict[str, Family] = {
    f.name: f
    for f in (
        Family(
            "table1",
            "Table 1: BCS core mechanisms across networks",
            _expand_table1,
            E.table1_point,
            smoke=dict(node_counts=(2, 4)),
        ),
        Family(
            "fig8a",
            "Fig 8(a): barrier benchmark vs granularity",
            _expand_fig8_granularity,
            E.fig8a_point,
            smoke=dict(granularities_ms=(1, 10), n_ranks=8, iterations=5),
        ),
        Family(
            "fig8b",
            "Fig 8(b): barrier benchmark vs processes",
            _expand_fig8_procs,
            E.fig8b_point,
            smoke=dict(proc_counts=(4, 8), iterations=5),
        ),
        Family(
            "fig8c",
            "Fig 8(c): nearest-neighbour benchmark vs granularity",
            _expand_fig8_granularity,
            E.fig8c_point,
            smoke=dict(granularities_ms=(1, 10), n_ranks=8, iterations=5),
        ),
        Family(
            "fig8d",
            "Fig 8(d): nearest-neighbour benchmark vs processes",
            _expand_fig8_procs,
            E.fig8d_point,
            smoke=dict(proc_counts=(4, 8), iterations=5),
        ),
        Family(
            "table2",
            "Fig 9 / Table 2: applications",
            _expand_table2,
            E.table2_point,
            smoke=dict(apps=("EP", "IS"), n_ranks=4, scale=0.05),
        ),
        Family(
            "fig10",
            "Fig 10: SAGE scaling",
            _expand_fig10,
            E.fig10_point,
            smoke=dict(proc_counts=(4, 8), scale=0.01),
        ),
        Family(
            "fig11",
            "Fig 11: SWEEP3D blocking vs non-blocking",
            _expand_fig11,
            E.fig11_point,
            smoke=dict(proc_counts=(4, 8), octants=2, kblocks=2),
        ),
        Family(
            "ablation_timeslice",
            "Ablation: time slice",
            _expand_ablation_timeslice,
            E.ablation_timeslice_point,
            smoke=dict(timeslices_us=(250, 500), n_ranks=4),
        ),
        Family(
            "ablation_buffered",
            "Ablation: buffered sends",
            _expand_ablation_buffered,
            E.ablation_buffered_point,
            smoke=dict(n_ranks=4),
        ),
        Family(
            "ablation_kernel",
            "Ablation: kernel-level BCS",
            _expand_ablation_kernel,
            E.ablation_kernel_point,
            smoke=dict(n_ranks=8, iterations=5),
        ),
        Family(
            "ext_ft",
            "Extension: NPB FT (transpose-heavy kernel)",
            _expand_ext_ft,
            X.ext_ft_point,
            smoke=dict(rank_counts=(8,), iterations=2, grid_points=64),
        ),
        Family(
            "ext_pfs_qos",
            "Extension: PFS background traffic vs a latency-sensitive app",
            _expand_ext_pfs_qos,
            X.ext_pfs_point,
            smoke=dict(n_ranks=8, pfs_files=6, pfs_file_kib=1024, iterations=6),
        ),
        Family(
            "ext_noise",
            "Extension: OS noise coordination on a fine-grained barrier code",
            _expand_ext_noise,
            X.ext_noise_point,
            smoke=dict(n_ranks=8, iterations=8),
        ),
        Family(
            "scaling1024",
            "Scaling: strobe hot path, 128-1024 nodes, fat tree vs 3D torus",
            _expand_scaling1024,
            S.scaling_point,
            smoke=dict(node_counts=(128,), iterations=12),
        ),
        Family(
            "scaling16k",
            "Scaling: batched slice engine, 2k-16k nodes, fat tree vs 3D torus",
            _expand_scaling16k,
            S.scaling16k_point,
            smoke=dict(node_counts=(2048,), iterations=12),
        ),
        Family(
            "scaling64k",
            "Scaling: aggregated strobe + arena state, 2k-64k nodes",
            _expand_scaling64k,
            S.scaling64k_point,
            smoke=dict(node_counts=(4096,), iterations=12),
            trend_columns=(
                "speedup",
                "slices_per_sec",
                "peak_rss_mib",
                "gc_collections",
            ),
        ),
        Family(
            "critpath",
            "Critical path: virtual-time blame composition per experiment",
            _expand_critpath,
            _execute_critpath,
            smoke=dict(experiments=("fig8",)),
            trend_columns=(
                "compute_pct",
                "dem_pct",
                "msm_pct",
                "p2p_pct",
                "coll_pct",
                "wait_pct",
            ),
        ),
        Family(
            "selftest",
            "Farm selftest",
            _expand_selftest,
            _execute_selftest,
            smoke=dict(modes=("ok", "ok")),
        ),
    )
}

#: Named option presets.  "paper" is the sequential generators' defaults;
#: "smoke" is the reduced CI configuration.
PRESETS = ("paper", "smoke")


def expand_family(
    name: str,
    preset: str = "paper",
    overrides: Optional[Mapping[str, Any]] = None,
) -> List[PointSpec]:
    """Ordered :class:`PointSpec` list for one family under a preset."""
    family = FAMILIES[name]
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {PRESETS}")
    options = dict(family.smoke) if preset == "smoke" else {}
    if overrides:
        options.update(overrides)
    return family.specs(options)


def family_specs(
    names: Optional[Sequence[str]] = None,
    preset: str = "paper",
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Dict[str, List[PointSpec]]:
    """Specs for several families, keyed by family name, in given order.

    ``names=None`` expands every figure family; an empty sequence
    expands none (callers scheduling only explicit extra specs).
    """
    out: Dict[str, List[PointSpec]] = {}
    for name in FIGURE_FAMILIES if names is None else names:
        if name not in FAMILIES:
            raise ValueError(
                f"unknown family {name!r}; choose from: "
                + ", ".join(sorted(FAMILIES))
            )
        out[name] = expand_family(name, preset, (overrides or {}).get(name))
    return out


def execute_point(family: str, params: Mapping[str, Any]) -> dict:
    """Run one point in-process and return its row dict.

    This is the single entry point both the sequential path (indirectly,
    through the ``<family>_point`` functions) and the farm's worker
    children (directly) go through.
    """
    try:
        fam = FAMILIES[family]
    except KeyError:
        raise ValueError(f"unknown point family {family!r}") from None
    return fam.execute(**dict(params))
