"""``repro farm`` — the parallel experiment-execution subcommand family.

::

    repro farm figures -j 4                 # all paper tables/figures
    repro farm figures fig8a table2 -j 2    # a subset
    repro farm figures --preset smoke       # reduced CI configuration
    repro farm figures --no-cache           # force re-execution
    repro farm figures --backend queue      # lease/heartbeat queue backend
    repro farm list                         # families and point counts
    repro farm list --cached --limit 20     # page through the result store
    repro farm metrics                      # last run's farm telemetry
    repro farm clean                        # drop the result store
    repro farm submit URL table1 --wait     # enqueue on a queue service

Exit codes: 0 = all points ok, 1 = some points failed, 3 =
``--expect-cached`` was given but points had to execute.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..harness.report import print_table
from .points import (
    ANALYSIS_FAMILIES,
    EXTENSION_FAMILIES,
    FAMILIES,
    FIGURE_FAMILIES,
    PRESETS,
    SCALING_FAMILIES,
)
from .service import FarmReport, run_farm
from .store import ResultStore, default_store_path

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro farm",
        description="Parallel, cached execution of the paper's experiment points.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser(
        "figures", help="regenerate tables/figures through the worker farm"
    )
    figures.add_argument(
        "families",
        nargs="*",
        metavar="FAMILY",
        help=f"families to run (default: all of {', '.join(FIGURE_FAMILIES)})",
    )
    figures.add_argument(
        "-j", "--jobs", type=int, default=4, help="worker processes (default 4)"
    )
    figures.add_argument(
        "--backend",
        choices=("pool", "queue"),
        default="pool",
        help="execution backend: the spawn-safe worker pool (default, the "
        "differential oracle) or the in-process lease/heartbeat queue "
        "(docs/FARM.md, 'Distributed execution')",
    )
    figures.add_argument(
        "--preset",
        choices=PRESETS,
        default="paper",
        help="point-set preset: 'paper' (full tables) or 'smoke' (reduced CI set)",
    )
    figures.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result store; execute every point",
    )
    figures.add_argument(
        "--store", metavar="PATH", default=None, help="result store directory"
    )
    figures.add_argument(
        "--extensions",
        action="store_true",
        help=f"also run the extension families ({', '.join(EXTENSION_FAMILIES)})",
    )
    figures.add_argument(
        "--trend-store",
        metavar="PATH",
        default=None,
        help="append this run's per-family durations to a cross-run trend "
        "store (see docs/TRENDS.md; REPRO_TREND_RECORD=1 enables the default store)",
    )
    figures.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="per-point wall-clock timeout in seconds (default 600)",
    )
    figures.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts after a timeout/crash (default 1)",
    )
    figures.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write every family's rows as JSON",
    )
    figures.add_argument(
        "--metrics",
        action="store_true",
        help="print the farm metrics report after the tables",
    )
    figures.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail (exit 3) if any point had to execute — CI cache check",
    )
    figures.add_argument(
        "--no-progress", action="store_true", help="suppress the progress line"
    )

    lst = sub.add_parser("list", help="list point families and their sizes")
    lst.add_argument("--preset", choices=PRESETS, default="paper")
    lst.add_argument(
        "--cached",
        action="store_true",
        help="list the result store's cached point records instead",
    )
    lst.add_argument(
        "--store", metavar="PATH", default=None, help="result store directory"
    )
    lst.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="print at most N rows (default: all)",
    )
    lst.add_argument(
        "--offset",
        type=int,
        default=0,
        metavar="N",
        help="skip the first N rows (default 0)",
    )

    submit = sub.add_parser(
        "submit", help="submit families to a running queue service (HTTP)"
    )
    submit.add_argument("rest", nargs=argparse.REMAINDER)

    metrics = sub.add_parser("metrics", help="print the last farm run's telemetry")
    metrics.add_argument("--store", metavar="PATH", default=None)

    clean = sub.add_parser("clean", help="delete every cached point result")
    clean.add_argument("--store", metavar="PATH", default=None)

    return parser


def _store_from(args) -> ResultStore:
    path = Path(args.store) if args.store else default_store_path()
    return ResultStore(path)


def _print_report_tables(report: FarmReport, save: Optional[str]) -> None:
    collected = {}
    for family in report.families:
        rows = family.rows
        collected[family.title] = rows
        if not rows:
            print(f"\n== {family.title} == (no rows)")
            continue
        headers = list(rows[0].keys())
        print_table(family.title, headers, [[row[h] for h in headers] for row in rows])
    if save:
        with open(save, "w") as fh:
            json.dump(collected, fh, indent=2, default=str)
        print(f"\nsaved {len(collected)} experiment(s) to {save}")


def _print_failures(report: FarmReport) -> None:
    for outcome in report.failures():
        last_line = ((outcome.error or "").strip().splitlines() or ["?"])[-1]
        print(
            f"[farm] FAILED {outcome.spec.label()} "
            f"after {outcome.attempts} attempt(s): {last_line}",
            file=sys.stderr,
        )


def cmd_figures(args) -> int:
    wanted = list(args.families) or list(FIGURE_FAMILIES)
    if args.extensions:
        wanted += [f for f in EXTENSION_FAMILIES if f not in wanted]
    unknown = [f for f in wanted if f not in FAMILIES]
    if unknown:
        print(f"unknown family(ies): {', '.join(unknown)}", file=sys.stderr)
        print(
            "choose from: "
            + ", ".join(
                FIGURE_FAMILIES
                + EXTENSION_FAMILIES
                + SCALING_FAMILIES
                + ANALYSIS_FAMILIES
            ),
            file=sys.stderr,
        )
        return 2
    trend_store = None
    if args.trend_store:
        from ..obs.trends import TrendStore

        trend_store = TrendStore(Path(args.trend_store))
    report = run_farm(
        families=wanted,
        preset=args.preset,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        store=_store_from(args),
        timeout_s=args.timeout,
        retries=args.retries,
        progress=not args.no_progress,
        trend_store=trend_store,
        backend=args.backend,
    )
    _print_report_tables(report, args.save)
    if args.metrics:
        print("\n== farm metrics ==")
        print(report.registry.render())
    _print_failures(report)
    print(f"\n{report.summary_line()}")
    if args.expect_cached and report.n_executed > 0:
        print(
            f"[farm] expected a fully cached run but executed "
            f"{report.n_executed} point(s)",
            file=sys.stderr,
        )
        return 3
    return 0 if report.ok else 1


def _paginate(rows: list, limit: Optional[int], offset: int) -> tuple:
    """(page, footnote) — ``--limit/--offset`` over any row list."""
    offset = max(0, offset)
    page = rows[offset:]
    if limit is not None and limit >= 0:
        page = page[:limit]
    shown_to = offset + len(page)
    note = ""
    if not page and rows:
        note = f"--offset {offset} is past the end ({len(rows)} rows)"
    elif offset or shown_to < len(rows):
        note = (
            f"showing {offset + 1}-{shown_to} of {len(rows)} "
            f"(--offset {shown_to} for the next page)"
        )
    return page, note


def cmd_list(args) -> int:
    if args.cached:
        return _cmd_list_cached(args)
    rows = []
    for name in (
        FIGURE_FAMILIES + EXTENSION_FAMILIES + SCALING_FAMILIES + ANALYSIS_FAMILIES
    ):
        specs = FAMILIES[name].specs(
            FAMILIES[name].smoke if args.preset == "smoke" else None
        )
        rows.append([name, len(specs), FAMILIES[name].title])
    total = sum(r[1] for r in rows)
    page, note = _paginate(rows, args.limit, args.offset)
    print_table(
        f"farm families ({args.preset} preset)",
        ["family", "points", "title"],
        page,
    )
    print(f"\n{total} points total" + (f"; {note}" if note else ""))
    return 0


def _cmd_list_cached(args) -> int:
    """``repro farm list --cached``: page through the result store."""
    store = _store_from(args)
    rows = [
        [
            record.get("family", "?"),
            ",".join(
                f"{k}={v}" for k, v in sorted((record.get("params") or {}).items())
            )
            or "-",
            f"{record.get('duration_s', 0.0):.2f}",
            (record.get("key") or "")[:12],
        ]
        for record in store.records()
    ]
    rows.sort(key=lambda r: (r[0], r[1]))
    page, note = _paginate(rows, args.limit, args.offset)
    print_table(
        f"cached point records ({store.root})",
        ["family", "params", "dur_s", "key"],
        page,
    )
    print(f"\n{len(rows)} records total" + (f"; {note}" if note else ""))
    return 0


def cmd_metrics(args) -> int:
    last = _store_from(args).load_last_run()
    if last is None:
        print("no farm run recorded in this store yet", file=sys.stderr)
        return 1
    print(
        f"== last farm run: {last.get('points', '?')} points, "
        f"{last.get('cached', '?')} cached, {last.get('executed', '?')} executed, "
        f"{last.get('failed', '?')} failed =="
    )
    hit_rate = last.get("cache_hit_rate")
    if isinstance(hit_rate, (int, float)):
        print(f"cache hit rate: {hit_rate:.1%}")
    # Queue-backend telemetry: all zero when the pool backend ran.
    print(
        f"backend: {last.get('backend', 'pool')} "
        f"(queue depth {last.get('queue_depth', 0)}, "
        f"leases {last.get('lease_count', 0)}, "
        f"workers {last.get('worker_count', 0)})"
    )
    render = last.get("metrics_render")
    if render:
        print(render)
    for failure in last.get("failures", []):
        print(
            f"FAILED {failure.get('point')}: {failure.get('error')}",
            file=sys.stderr,
        )
    return 0


def cmd_clean(args) -> int:
    removed = _store_from(args).clear()
    print(f"removed {removed} cached point result(s)")
    return 0


def cmd_submit(args) -> int:
    # Normally short-circuited in main(); this path serves parsers that
    # went through the subcommand machinery (e.g. scripted build_parser).
    from .queue.cli import submit_main

    return submit_main(list(args.rest))


_DISPATCH = {
    "figures": cmd_figures,
    "list": cmd_list,
    "metrics": cmd_metrics,
    "clean": cmd_clean,
    "submit": cmd_submit,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "submit":
        # Dispatched before argparse: submit owns its own option set
        # (server URL, --wait, --expect-cached — see queue/cli.py).
        from .queue.cli import submit_main

        return submit_main(argv[1:])
    args = build_parser().parse_args(argv)
    return _DISPATCH[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
