"""Code fingerprint: one hash over the whole ``repro`` source tree.

The result store keys every cached row by ``(point hash, code
fingerprint)``; touching any ``.py`` file under ``src/repro`` therefore
invalidates the entire cache, which is the only safe default for a
simulator whose every module can change virtual-time outcomes.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

__all__ = ["code_fingerprint", "git_sha", "result_key"]

_cached: Optional[str] = None
_sha_cached: Optional[str] = None


def code_fingerprint(root: Optional[Path] = None) -> str:
    """Hex digest over every ``*.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package directory; the
    default result is memoized (the tree cannot change mid-process in a
    meaningful way — a further run re-fingerprints).
    """
    global _cached
    if root is None and _cached is not None:
        return _cached
    base = root
    if base is None:
        import repro

        base = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(path.relative_to(base).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()[:20]
    if root is None:
        _cached = value
    return value


def git_sha() -> str:
    """HEAD commit of the checkout the ``repro`` package runs from.

    ``"unknown"`` outside a git checkout (installed wheel, exported
    tarball) — provenance fields must never fail a run.  Memoized: the
    HEAD cannot move under a running process in a way we care about.
    """
    global _sha_cached
    if _sha_cached is not None:
        return _sha_cached
    import subprocess

    import repro

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(repro.__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        value = out.stdout.strip() if out.returncode == 0 else ""
    except (OSError, subprocess.SubprocessError):
        value = ""
    _sha_cached = value or "unknown"
    return _sha_cached


def result_key(fingerprint: str, point_hash: str) -> str:
    """Store key for one (code version, point) pair."""
    return hashlib.sha256(f"{fingerprint}:{point_hash}".encode()).hexdigest()
