"""Farm orchestration: expand → cache lookup → pool → store → aggregate.

``run_farm`` is the one entry point: it turns family names into point
specs, satisfies what it can from the content-addressed store, pushes
the rest through the :class:`~repro.farm.pool.WorkerPool`, persists
fresh results, and reassembles each family's rows in exactly the order
the sequential generators produce them.

Farm telemetry goes through the same :class:`repro.obs.MetricsRegistry`
the simulator uses (counters labeled by point family, a queue-depth
gauge, per-point duration histograms), so ``repro farm metrics`` reads
like ``repro metrics`` — see docs/FARM.md.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from ..obs import MetricsRegistry
from .fingerprint import code_fingerprint, git_sha, result_key
from .points import FAMILIES, PointSpec, family_specs
from .pool import PointOutcome, WorkerPool
from .store import ResultStore

__all__ = ["FamilyResult", "FarmReport", "run_farm"]


@dataclass
class FamilyResult:
    """One family's reassembled table plus its per-point outcomes."""

    name: str
    title: str
    outcomes: List[PointOutcome]

    @property
    def rows(self) -> List[dict]:
        """Row dicts of the successful points, in table order."""
        return [o.row for o in self.outcomes if o.ok]

    @property
    def complete(self) -> bool:
        return all(o.ok for o in self.outcomes)


@dataclass
class FarmReport:
    """Everything one farm run produced."""

    families: List[FamilyResult]
    fingerprint: str
    jobs: int
    duration_s: float
    registry: MetricsRegistry
    n_points: int = 0
    n_cached: int = 0
    n_executed: int = 0
    n_failed: int = 0
    n_retried: int = 0
    #: which execution backend ran the misses ("pool" or "queue").
    backend: str = "pool"
    #: peak pending items in the queue backend (0 for the pool).
    queue_depth: int = 0
    #: peak concurrently leased items in the queue backend (0 for the pool).
    lease_count: int = 0
    #: distinct workers that leased work in the queue backend (0 for the pool).
    worker_count: int = 0
    #: cached records in the result store after this run (dashboard tile).
    store_records: int = 0

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this run's points served by the result store."""
        return round(self.n_cached / self.n_points, 4) if self.n_points else 0.0

    def failures(self) -> List[PointOutcome]:
        return [o for f in self.families for o in f.outcomes if not o.ok]

    def summary_line(self) -> str:
        return (
            f"[farm] {self.n_points} points: {self.n_cached} cached, "
            f"{self.n_executed} executed, {self.n_failed} failed, "
            f"{self.n_retried} retried in {self.duration_s:.1f}s "
            f"({self.jobs} workers, {self.backend} backend, "
            f"code {self.fingerprint[:12]})"
        )

    def summary_dict(self) -> dict:
        """JSON-safe digest persisted as the store's last-run record.

        Carries full provenance (source-tree fingerprint, git SHA,
        interpreter version) so trend rows and cache records can be
        joined by what produced them, not just by when.
        """
        return {
            "fingerprint": self.fingerprint,
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "jobs": self.jobs,
            "backend": self.backend,
            "queue_depth": self.queue_depth,
            "lease_count": self.lease_count,
            "worker_count": self.worker_count,
            "duration_s": self.duration_s,
            "points": self.n_points,
            "cached": self.n_cached,
            "executed": self.n_executed,
            "failed": self.n_failed,
            "retried": self.n_retried,
            "cache_hit_rate": self.cache_hit_rate,
            "store_records": self.store_records,
            "families": {
                f.name: {
                    "points": len(f.outcomes),
                    "ok": sum(1 for o in f.outcomes if o.ok),
                }
                for f in self.families
            },
            "failures": [
                {
                    "point": o.spec.label(),
                    "attempts": o.attempts,
                    "error": ((o.error or "").strip().splitlines() or [""])[-1],
                }
                for o in self.failures()
            ],
            "metrics": self.registry.snapshot(),
            "metrics_render": self.registry.render(),
        }


class _Progress:
    """One-line live progress: \\r-updates on a tty, sparse lines otherwise."""

    def __init__(self, total: int, enabled: bool, stream=None):
        self.total = total
        self.done = 0
        self.failed = 0
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled and total > 0
        self.is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_len = 0

    def advance(self, outcome: PointOutcome) -> None:
        if not self.enabled:
            return
        self.done += 1
        if not outcome.ok:
            self.failed += 1
        line = (
            f"[farm] {self.done}/{self.total} points"
            + (f", {self.failed} failed" if self.failed else "")
            + f" (last: {outcome.spec.label()})"
        )
        if self.is_tty:
            pad = " " * max(0, self._last_len - len(line))
            self.stream.write("\r" + line + pad)
            self._last_len = len(line)
            if self.done == self.total:
                self.stream.write("\n")
        elif self.done == self.total or self.done % 10 == 0:
            self.stream.write(line + "\n")
        self.stream.flush()


def _record_row_gauges(
    registry: MetricsRegistry, name: str, fam_outcomes: List[PointOutcome]
) -> None:
    """Mirror a family's ``trend_columns`` into per-point gauges.

    Each gauge lands in the registry snapshot as
    ``farm.row.<column>{family=...,point=...}``, which the trend store
    records as an exact series — so ``repro trend check`` gates on row
    values (e.g. the critical-path blame composition), not only on
    wall-clock.  The point label joins param values with ``-`` (label
    values must stay comma-free for the trend label parser).
    """
    columns = FAMILIES[name].trend_columns
    if not columns:
        return
    for outcome in fam_outcomes:
        if not outcome.ok:
            continue
        point = "-".join(str(v) for _, v in outcome.spec.params)
        for column in columns:
            value = outcome.row.get(column)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            registry.gauge(f"farm.row.{column}", family=name, point=point).set(
                float(value)
            )


def _record_trends(trend_store, summary: dict) -> None:
    """Append this run to the cross-run trend store (docs/TRENDS.md).

    Resolved lazily and wrapped defensively: trend recording is an
    observability side channel and must never fail or slow a farm run
    that did not ask for it.
    """
    if trend_store is None:
        if not os.environ.get("REPRO_TREND_RECORD"):
            return
        from ..obs.trends import TrendStore

        trend_store = TrendStore()
    from ..obs.trends.record import record_farm_summary

    try:
        record_farm_summary(trend_store, summary)
    except (OSError, ValueError):
        pass  # read-only disk / duplicate run id: the farm run still counts


def run_farm(
    families: Optional[Sequence[str]] = None,
    preset: str = "paper",
    jobs: int = 4,
    use_cache: bool = True,
    store: Optional[ResultStore] = None,
    timeout_s: float = 600.0,
    retries: int = 1,
    registry: Optional[MetricsRegistry] = None,
    progress: bool = True,
    overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
    extra_specs: Optional[Sequence[PointSpec]] = None,
    trend_store=None,
    backend: str = "pool",
) -> FarmReport:
    """Run (or replay from cache) the given families' points in parallel.

    ``extra_specs`` appends raw specs after the expanded families —
    the hook tests use to inject hanging/crashing points.

    ``trend_store`` (a :class:`repro.obs.trends.TrendStore`) appends the
    run's per-family durations to the cross-run trend store; when None,
    the ``REPRO_TREND_RECORD`` environment variable enables recording
    into the default store.  Disabled recording costs nothing.

    ``backend`` selects how cache misses execute: ``"pool"`` (the
    spawn-safe worker pool — the differential oracle) or ``"queue"``
    (the full lease/heartbeat queue machinery of
    :mod:`repro.farm.queue` with worker threads standing in for worker
    hosts).  Both produce byte-identical rows.
    """
    if backend not in ("pool", "queue"):
        raise ValueError(f"backend must be 'pool' or 'queue', got {backend!r}")
    t0 = time.monotonic()
    registry = registry if registry is not None else MetricsRegistry()
    store = store if store is not None else ResultStore()
    specs_by_family = family_specs(families, preset, overrides)
    if extra_specs:
        for s in extra_specs:
            specs_by_family.setdefault(s.family, []).append(s)
    all_specs: List[PointSpec] = [
        s for specs in specs_by_family.values() for s in specs
    ]

    fingerprint = code_fingerprint()
    registry.counter("farm.runs").inc()
    registry.gauge("farm.workers").set(jobs)
    for name, specs in specs_by_family.items():
        registry.counter("farm.points.total", family=name).inc(len(specs))

    # -- cache pass ----------------------------------------------------------
    outcomes: Dict[int, PointOutcome] = {}
    misses: List[PointSpec] = []
    miss_index: Dict[int, int] = {}  # position in `misses` -> position overall
    for i, spec in enumerate(all_specs):
        record = (
            store.get(result_key(fingerprint, spec.point_hash()))
            if use_cache
            else None
        )
        if record is not None:
            outcomes[i] = PointOutcome(
                spec=spec, status="ok", row=record["row"], cached=True
            )
            registry.counter("farm.cache.hits", family=spec.family).inc()
        else:
            miss_index[len(misses)] = i
            misses.append(spec)
            registry.counter("farm.cache.misses", family=spec.family).inc()
    registry.gauge("farm.cache.hit_rate").set(
        round(len(outcomes) / len(all_specs), 4) if all_specs else 0.0
    )

    # -- execute misses ------------------------------------------------------
    prog = _Progress(total=len(all_specs), enabled=progress)
    for outcome in outcomes.values():
        prog.advance(outcome)
    n_retried = 0
    queue_stats = {"queue_depth": 0, "lease_count": 0, "worker_count": 0}
    queue_depth = registry.gauge("farm.queue.depth")
    queue_depth.set(0)

    def on_event(kind: str, info: dict) -> None:
        nonlocal n_retried
        if kind == "retry":
            n_retried += 1
            spec = info["spec"]
            registry.counter("farm.points.retried", family=spec.family).inc()
        elif kind == "done":
            outcome: PointOutcome = info["outcome"]
            queue_depth.dec()
            family = outcome.spec.family
            registry.histogram("farm.point.duration_ms", family=family).observe(
                outcome.duration_s * 1000.0
            )
            if outcome.ok:
                registry.counter("farm.points.completed", family=family).inc()
            else:
                registry.counter("farm.points.failed", family=family).inc()
            prog.advance(outcome)

    if misses and backend == "queue":
        # Full lease/heartbeat queue machinery; the controller owns the
        # farm.queue.* gauges and the duration histogram, the hook below
        # keeps the farm.points.* counters identical to the pool path.
        from .queue.backend import run_specs_through_queue

        def on_outcome(outcome: PointOutcome) -> None:
            nonlocal n_retried
            family = outcome.spec.family
            retries_used = max(0, outcome.attempts - 1)
            if retries_used:
                n_retried += retries_used
                registry.counter("farm.points.retried", family=family).inc(
                    retries_used
                )
            if outcome.ok:
                registry.counter("farm.points.completed", family=family).inc()
            else:
                registry.counter("farm.points.failed", family=family).inc()
            prog.advance(outcome)

        queue_outcomes, queue_stats = run_specs_through_queue(
            misses,
            store=store,
            registry=registry,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            on_outcome=on_outcome,
        )
        for pos, outcome in enumerate(queue_outcomes):
            outcomes[miss_index[pos]] = outcome
    elif misses:
        queue_depth.set(len(misses))
        pool = WorkerPool(jobs=jobs, timeout_s=timeout_s, retries=retries)
        for pos, outcome in enumerate(pool.run(misses, on_event=on_event)):
            outcomes[miss_index[pos]] = outcome
            if outcome.ok:
                key = result_key(fingerprint, outcome.spec.point_hash())
                store.put(
                    key,
                    {
                        "family": outcome.spec.family,
                        "params": outcome.spec.params_dict,
                        "point_hash": outcome.spec.point_hash(),
                        "fingerprint": fingerprint,
                        "row": outcome.row,
                        "duration_s": outcome.duration_s,
                        "attempts": outcome.attempts,
                    },
                )

    # -- aggregate -----------------------------------------------------------
    results: List[FamilyResult] = []
    cursor = 0
    for name, specs in specs_by_family.items():
        fam_outcomes = [outcomes[cursor + j] for j in range(len(specs))]
        cursor += len(specs)
        results.append(
            FamilyResult(name=name, title=FAMILIES[name].title, outcomes=fam_outcomes)
        )
        _record_row_gauges(registry, name, fam_outcomes)

    report = FarmReport(
        families=results,
        fingerprint=fingerprint,
        jobs=jobs,
        duration_s=time.monotonic() - t0,
        registry=registry,
        n_points=len(all_specs),
        n_cached=sum(1 for o in outcomes.values() if o.cached),
        n_executed=len(misses),
        n_failed=sum(1 for o in outcomes.values() if not o.ok),
        n_retried=n_retried,
        backend=backend,
        queue_depth=queue_stats["queue_depth"],
        lease_count=queue_stats["lease_count"],
        worker_count=queue_stats["worker_count"],
        store_records=store.count(),
    )
    summary = report.summary_dict()
    try:
        store.save_last_run(summary)
    except OSError:
        pass  # a read-only store must not fail the run
    _record_trends(trend_store, summary)
    return report
