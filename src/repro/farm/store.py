"""Content-addressed result store for farm points.

Layout (everything JSON, everything atomic-rename written)::

    <root>/objects/<key[:2]>/<key>.json   one record per cached point
    <root>/last-run.json                  summary + metrics of the last run

A record stores the point's identity next to its row so the cache can
be audited by hand (``python -m json.tool``) and so a key collision —
practically impossible, but cheap to guard — is detected on read.
Corrupt or unreadable records behave as misses, never as errors: the
worst outcome of a damaged cache is recomputation.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["DEFAULT_STORE", "ResultStore"]

#: Default on-disk location (repo-local, gitignored); override with
#: ``REPRO_FARM_STORE`` or ``--store``.
DEFAULT_STORE = ".farm-store"


def default_store_path() -> Path:
    return Path(os.environ.get("REPRO_FARM_STORE", DEFAULT_STORE))


class ResultStore:
    """Keyed JSON blobs on disk; keys come from :func:`fingerprint.result_key`."""

    LAST_RUN = "last-run.json"

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_store_path()

    # -- point records -------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The record stored under ``key``, or None (missing/corrupt)."""
        path = self._object_path(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "row" not in record:
            return None
        if record.get("key") not in (None, key):
            return None
        return record

    def put(self, key: str, record: dict) -> None:
        """Atomically write ``record`` under ``key`` (overwrites)."""
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_json(path, {**record, "key": key})

    def count(self) -> int:
        """Number of cached point records."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    def index(self, limit: int = 50, offset: int = 0) -> list:
        """Lightweight record listing for dashboards: identity, no rows.

        Key order (the shard layout's natural order); reads only the
        ``limit`` records inside the requested window, so paging a big
        store stays cheap.
        """
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        entries = []
        paths = sorted(objects.glob("*/*.json"))[offset : offset + limit]
        for path in paths:
            record = self.get(path.stem)
            if record is None:
                continue
            entries.append(
                {
                    "key": record.get("key", path.stem),
                    "family": record.get("family"),
                    "params": record.get("params"),
                    "duration_s": record.get("duration_s"),
                    "attempts": record.get("attempts"),
                }
            )
        return entries

    def records(self):
        """Iterate every readable cached record (corrupt ones skipped).

        Order is by key (the shard layout's natural order) — callers
        wanting a human ordering sort on record fields themselves.
        """
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            record = self.get(path.stem)
            if record is not None:
                yield record

    def clear(self) -> int:
        """Delete every cached point record; returns how many were removed."""
        objects = self.root / "objects"
        removed = 0
        if objects.is_dir():
            for path in objects.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- run summary ---------------------------------------------------------

    def save_last_run(self, summary: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_json(self.root / self.LAST_RUN, summary)

    def load_last_run(self) -> Optional[dict]:
        try:
            with open(self.root / self.LAST_RUN) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                # No sort_keys: a cached row must round-trip with its key
                # order intact so replayed tables are byte-identical to the
                # sequential path (dict order is deterministic anyway).
                json.dump(payload, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        return f"<ResultStore {self.root} objects={self.count()}>"
