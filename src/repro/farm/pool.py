"""Spawn-safe worker pool: one child process per point attempt.

Every point runs in its own freshly spawned interpreter, so a wedged,
OOM'd, or crashing simulation takes down only its worker:

- a **timeout** (wall-clock, per attempt) kills the child and counts as
  a transient failure;
- a **crash** (child exits without reporting) counts the same way;
- transient failures are retried up to ``retries`` extra attempts;
- a clean Python **exception** in the point is deterministic, is never
  retried, and carries the child's traceback back to the parent.

The ``spawn`` start method is used unconditionally — it is the only
start method that is safe regardless of parent threads and it matches
what macOS/Windows would do anyway, so CI and laptops behave alike.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Callable, Dict, List, Optional, Sequence

from .points import PointSpec

__all__ = ["PointOutcome", "WorkerPool", "run_point_in_child"]

_CTX = mp.get_context("spawn")

#: parent poll interval while waiting on children, seconds.
_POLL_S = 0.05


def _child_entry(conn, family: str, params: dict) -> None:
    """Worker body: run one point, report ("ok", row) or ("error", tb)."""
    try:
        from repro.farm.points import execute_point

        payload = ("ok", execute_point(family, params))
    except BaseException:
        payload = ("error", traceback.format_exc(limit=30))
    try:
        conn.send(payload)
        conn.close()
    except Exception:
        pass  # parent already gone or pipe torn down — nothing to report to


@dataclass
class PointOutcome:
    """Terminal state of one point after all attempts."""

    spec: PointSpec
    status: str  # "ok" | "failed"
    row: Optional[dict] = None
    attempts: int = 0
    #: wall-clock seconds of the final attempt.
    duration_s: float = 0.0
    error: Optional[str] = None
    #: True when the row came from the result store, not a worker.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Task:
    seq: int
    spec: PointSpec
    attempts: int = 0
    proc: Optional[object] = None
    conn: Optional[object] = None
    started: float = 0.0
    deadline: float = field(default=float("inf"))


def run_point_in_child(
    family: str,
    params: dict,
    timeout_s: float,
    heartbeat: Optional[Callable[[], None]] = None,
    heartbeat_interval_s: float = 5.0,
):
    """Run one point in a freshly spawned child interpreter.

    The single-point sibling of :meth:`WorkerPool.run`, shared with the
    queue workers (:mod:`repro.farm.queue.worker`): same spawn context,
    same crash containment, same ``("ok"|"error"|"timeout"|"crash",
    payload)`` classification — returned as ``(status, payload,
    duration_s)``.

    ``heartbeat`` (optional) is invoked from the parent every
    ``heartbeat_interval_s`` while the child runs — the queue worker's
    lease keep-alive.  If it raises (the lease was lost), the child is
    killed before the exception propagates: a worker without a lease
    must not keep computing.
    """
    parent_conn, child_conn = _CTX.Pipe(duplex=False)
    task = _Task(seq=0, spec=None)
    task.proc = _CTX.Process(
        target=_child_entry, args=(child_conn, family, dict(params)), daemon=True
    )
    task.proc.start()
    child_conn.close()
    task.conn = parent_conn
    started = time.monotonic()
    deadline = started + timeout_s
    next_beat = started + heartbeat_interval_s
    try:
        while True:
            conn_wait([parent_conn, task.proc.sentinel], timeout=_POLL_S)
            now = time.monotonic()
            if parent_conn.poll():
                try:
                    status, payload = parent_conn.recv()
                except (EOFError, OSError):
                    WorkerPool._kill(task)
                    return ("crash", WorkerPool._crash_reason(task), now - started)
                WorkerPool._reap(task)
                return (status, payload, now - started)
            if now >= deadline:
                WorkerPool._kill(task)
                return (
                    "timeout",
                    f"point timed out after {timeout_s:.1f}s (wall clock)",
                    now - started,
                )
            if not task.proc.is_alive():
                WorkerPool._kill(task)
                return ("crash", WorkerPool._crash_reason(task), now - started)
            if heartbeat is not None and now >= next_beat:
                heartbeat()
                next_beat = now + heartbeat_interval_s
    except BaseException:
        WorkerPool._kill(task)
        raise


class WorkerPool:
    """Run point specs through isolated child processes.

    ``on_event(kind, task_info)`` (optional) observes scheduling:
    ``kind`` is ``"start"``, ``"retry"``, or ``"done"``; the payload is a
    dict with ``spec``, ``attempt`` and, for retries, ``reason``, and for
    completions, the :class:`PointOutcome`.
    """

    def __init__(
        self,
        jobs: int = 2,
        timeout_s: float = 600.0,
        retries: int = 1,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries

    # -- scheduling ----------------------------------------------------------

    def run(
        self,
        specs: Sequence[PointSpec],
        on_event: Optional[Callable[[str, dict], None]] = None,
    ) -> List[PointOutcome]:
        """Execute every spec; outcomes come back in input order."""
        emit = on_event or (lambda kind, info: None)
        pending = deque(_Task(seq=i, spec=s) for i, s in enumerate(specs))
        running: Dict[int, _Task] = {}
        outcomes: Dict[int, PointOutcome] = {}

        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    task = pending.popleft()
                    self._start(task)
                    running[task.seq] = task
                    emit("start", {"spec": task.spec, "attempt": task.attempts})

                self._wait_any(running)
                now = time.monotonic()
                for task in list(running.values()):
                    result = self._poll(task, now)
                    if result is None:
                        continue
                    del running[task.seq]
                    status, payload = result
                    if status == "ok":
                        outcomes[task.seq] = PointOutcome(
                            spec=task.spec,
                            status="ok",
                            row=payload,
                            attempts=task.attempts,
                            duration_s=now - task.started,
                        )
                        emit("done", {"outcome": outcomes[task.seq]})
                    elif status == "error" or task.attempts > self.retries:
                        outcomes[task.seq] = PointOutcome(
                            spec=task.spec,
                            status="failed",
                            attempts=task.attempts,
                            duration_s=now - task.started,
                            error=payload,
                        )
                        emit("done", {"outcome": outcomes[task.seq]})
                    else:  # transient (timeout/crash) with retries left
                        emit(
                            "retry",
                            {
                                "spec": task.spec,
                                "attempt": task.attempts,
                                "reason": payload,
                            },
                        )
                        pending.append(task)
        finally:
            for task in running.values():
                self._kill(task)

        return [outcomes[i] for i in range(len(specs))]

    # -- per-task lifecycle --------------------------------------------------

    def _start(self, task: _Task) -> None:
        task.attempts += 1
        parent_conn, child_conn = _CTX.Pipe(duplex=False)
        task.proc = _CTX.Process(
            target=_child_entry,
            args=(child_conn, task.spec.family, task.spec.params_dict),
            daemon=True,
        )
        task.proc.start()
        child_conn.close()  # child holds the write end; EOF now means death
        task.conn = parent_conn
        task.started = time.monotonic()
        task.deadline = task.started + self.timeout_s

    def _poll(self, task: _Task, now: float):
        """("ok"|"error"|"timeout"|"crash", payload) once terminal, else None."""
        if task.conn.poll():
            try:
                status, payload = task.conn.recv()
            except (EOFError, OSError):
                self._kill(task)
                return ("crash", self._crash_reason(task))
            self._reap(task)
            return (status, payload)
        if now >= task.deadline:
            self._kill(task)
            return (
                "timeout",
                f"point timed out after {self.timeout_s:.1f}s (wall clock)",
            )
        if not task.proc.is_alive():
            self._kill(task)
            return ("crash", self._crash_reason(task))
        return None

    def _wait_any(self, running: Dict[int, _Task]) -> None:
        """Block briefly until any child reports, dies, or we must re-check
        deadlines."""
        if not running:
            return
        sentinels = []
        for task in running.values():
            sentinels.append(task.conn)
            sentinels.append(task.proc.sentinel)
        conn_wait(sentinels, timeout=_POLL_S)

    @staticmethod
    def _crash_reason(task: _Task) -> str:
        code = task.proc.exitcode
        return f"worker exited without a result (exit code {code})"

    @staticmethod
    def _reap(task: _Task) -> None:
        task.conn.close()
        task.proc.join(timeout=5)
        if task.proc.is_alive():  # refuses to exit after reporting: force it
            task.proc.kill()
            task.proc.join(timeout=5)

    @staticmethod
    def _kill(task: _Task) -> None:
        if task.proc is not None and task.proc.is_alive():
            task.proc.kill()
        if task.proc is not None:
            task.proc.join(timeout=5)
        if task.conn is not None:
            task.conn.close()
