"""``repro.farm.queue``: the distributed execution layer of the farm.

Turns the single-host worker pool into a queue-backed job service (see
docs/FARM.md, "Distributed execution"):

- :mod:`~repro.farm.queue.jobqueue` — durable, crash-safe file-backed
  work-item queue (atomic-rename JSON, pending → leased → done/failed);
- :mod:`~repro.farm.queue.controller` — job state, TTL leases, dead-
  lease expiry, store-keyed idempotency, ``farm.queue.*`` telemetry;
- :mod:`~repro.farm.queue.httpd` / :mod:`~repro.farm.queue.client` —
  stdlib HTTP submission API + worker protocol and its urllib client;
- :mod:`~repro.farm.queue.worker` — pull-based worker loop (lease,
  execute in a spawned child, heartbeat, write back);
- :mod:`~repro.farm.queue.backend` — the in-process queue backend
  ``run_farm(backend="queue")`` routes through, differential against
  the pool path;
- :mod:`~repro.farm.queue.cli` — ``repro serve`` / ``repro worker`` /
  ``repro farm submit``.
"""

from .backend import run_specs_through_queue
from .client import QueueClient, QueueServiceError
from .controller import QueueController
from .httpd import FarmQueueServer, make_server
from .jobqueue import FileJobQueue, LeaseError
from .worker import QueueWorker, WorkerStats

__all__ = [
    "FarmQueueServer",
    "FileJobQueue",
    "LeaseError",
    "QueueClient",
    "QueueController",
    "QueueServiceError",
    "QueueWorker",
    "WorkerStats",
    "make_server",
    "run_specs_through_queue",
]
