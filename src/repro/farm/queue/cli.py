"""CLI entry points of the distributed farm: serve, work, submit.

::

    repro serve --port 8642 --store .farm-store --queue .farm-queue
    repro worker http://host:8642 --id w1 --drain
    repro farm submit http://host:8642 table1 --preset smoke --wait

``repro serve`` runs the queue service (controller + HTTP API) in the
foreground until interrupted; ``repro worker`` is one pull-based worker
loop against a running service; ``repro farm submit`` is the HTTP
client — it enqueues families, optionally waits, and prints the same
tables ``repro farm figures`` prints (byte-identical rows, served from
the content-addressed store through the service).
"""

from __future__ import annotations

import argparse
import signal
import sys
import uuid
from pathlib import Path
from typing import List, Optional

from ..store import ResultStore, default_store_path

__all__ = ["serve_main", "submit_main", "worker_main"]

#: Default queue directory, next to the default result store.
DEFAULT_QUEUE_DIR = ".farm-queue"


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the farm queue service: HTTP submission API + "
        "lease-based worker protocol (see docs/FARM.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (default: pick a free one)"
    )
    parser.add_argument(
        "--store", metavar="PATH", default=None, help="result store directory"
    )
    parser.add_argument(
        "--queue",
        metavar="PATH",
        default=DEFAULT_QUEUE_DIR,
        help=f"durable job-queue directory (default {DEFAULT_QUEUE_DIR})",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=60.0,
        metavar="S",
        help="default lease TTL in seconds (default 60)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts after a transient worker failure (default 1)",
    )
    parser.add_argument(
        "--trend-store",
        metavar="PATH",
        default=None,
        help="trend store directory feeding /trends and the dashboard "
        "(default: $REPRO_TREND_STORE or .trend-store)",
    )
    parser.add_argument(
        "--traces",
        metavar="PATH",
        default=None,
        help="directory of Perfetto trace JSONs served under /traces",
    )
    parser.add_argument(
        "--publish-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="live telemetry poll interval in seconds; 0 disables the "
        "publisher thread (default 1)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = _build_serve_parser().parse_args(argv)
    from ...obs.trends.store import TrendStore
    from .controller import QueueController
    from .httpd import make_server
    from .jobqueue import FileJobQueue

    store = ResultStore(Path(args.store) if args.store else default_store_path())
    controller = QueueController(
        FileJobQueue(Path(args.queue)),
        store=store,
        max_attempts=args.retries + 1,
        default_ttl_s=args.ttl,
    )
    trend_store = TrendStore(
        Path(args.trend_store) if args.trend_store else None
    )
    server = make_server(
        controller,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        trend_store=trend_store,
        traces_dir=Path(args.traces) if args.traces else None,
    )
    if args.publish_interval > 0:
        server.publisher.start(interval_s=args.publish_interval)
    stats = controller.stats()
    print(
        f"[serve] farm queue service on {server.url} "
        f"(store {store.root}, queue {args.queue}, "
        f"{stats['pending']} pending / {stats['done']} done on disk)",
        flush=True,
    )
    print(f"[serve] dashboard at {server.url}/dashboard", flush=True)
    # SIGTERM (CI teardown, orchestrators) shuts down as cleanly as ^C.
    signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.publisher.stop()
        server.server_close()
        print("[serve] stopped", flush=True)
    return 0


def _build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="One pull-based farm worker: lease points from a queue "
        "service, execute them in spawned children, write rows back.",
    )
    parser.add_argument("server", metavar="URL", help="queue service base URL")
    parser.add_argument(
        "--id",
        dest="worker_id",
        default=None,
        help="worker id (default: a generated unique id)",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=60.0,
        metavar="S",
        help="lease TTL in seconds; heartbeats go out every ttl/3 (default 60)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="per-point wall-clock timeout in seconds (default 600)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=1.0,
        metavar="S",
        help="idle poll interval in seconds (default 1)",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit when the queue is empty instead of polling forever",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="exit after leasing N points",
    )
    return parser


def worker_main(argv: Optional[List[str]] = None) -> int:
    args = _build_worker_parser().parse_args(argv)
    from .client import QueueClient, QueueServiceError
    from .worker import QueueWorker

    worker_id = args.worker_id or f"worker-{uuid.uuid4().hex[:8]}"
    client = QueueClient(args.server)
    try:
        client.health()
    except QueueServiceError as exc:
        print(f"repro worker: {exc}", file=sys.stderr)
        return 2
    worker = QueueWorker(
        client,
        worker_id,
        ttl_s=args.ttl,
        timeout_s=args.timeout,
        poll_s=args.poll,
    )
    print(f"[worker {worker_id}] pulling from {args.server}", flush=True)
    try:
        stats = worker.run(drain=args.drain, max_points=args.max_points)
    except KeyboardInterrupt:
        stats = worker.stats
    except QueueServiceError as exc:
        print(f"repro worker: service lost: {exc}", file=sys.stderr)
        print(worker.stats.summary_line(), flush=True)
        return 2
    print(stats.summary_line(), flush=True)
    return 0 if stats.failed == 0 else 1


def _build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro farm submit",
        description="Submit point families to a running farm queue service.",
    )
    parser.add_argument("server", metavar="URL", help="queue service base URL")
    parser.add_argument(
        "families", nargs="+", metavar="FAMILY", help="families to enqueue"
    )
    parser.add_argument(
        "--preset",
        choices=("paper", "smoke"),
        default="paper",
        help="point-set preset (default paper)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="enqueue every point even if its result is already stored",
    )
    parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its tables",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="status poll interval with --wait (default 0.5)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=3600.0,
        metavar="S",
        help="give up waiting after this many seconds (default 3600)",
    )
    parser.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail (exit 3) if any point was not already cached — the "
        "CI replay check",
    )
    return parser


def submit_main(argv: Optional[List[str]] = None) -> int:
    args = _build_submit_parser().parse_args(argv)
    from ..points import FAMILIES
    from ...harness.report import print_table
    from .client import QueueClient, QueueServiceError

    unknown = [f for f in args.families if f not in FAMILIES]
    if unknown:
        print(f"unknown family(ies): {', '.join(unknown)}", file=sys.stderr)
        return 2
    client = QueueClient(args.server)
    try:
        job = client.submit(
            families=args.families,
            preset=args.preset,
            use_cache=not args.no_cache,
        )
    except QueueServiceError as exc:
        print(f"repro farm submit: {exc}", file=sys.stderr)
        return 2
    print(
        f"[submit] job {job['id']}: {job['items']} point(s), "
        f"{job['cached']} already cached, {job['pending']} queued",
        flush=True,
    )
    if args.expect_cached and job["pending"] > 0:
        print(
            f"[submit] expected a fully cached job but {job['pending']} "
            f"point(s) queued",
            file=sys.stderr,
        )
        return 3
    if not args.wait:
        print(f"[submit] poll with: GET {args.server}/jobs/{job['id']}")
        return 0
    try:
        status = client.wait_job(
            job["id"], poll_s=args.poll, timeout_s=args.timeout
        )
        rows_payload = client.job_rows(job["id"])
    except QueueServiceError as exc:
        print(f"repro farm submit: {exc}", file=sys.stderr)
        return 2
    by_family: dict = {}
    for entry in rows_payload["rows"]:
        if entry["row"] is not None:
            by_family.setdefault(entry["family"], []).append(entry["row"])
    for family in args.families:
        rows = by_family.get(family, [])
        title = FAMILIES[family].title
        if not rows:
            print(f"\n== {title} == (no rows)")
            continue
        headers = list(rows[0].keys())
        print_table(title, headers, [[row[h] for h in headers] for row in rows])
    counts = status["counts"]
    print(
        f"\n[submit] job {job['id']} done: {counts['done']} ok, "
        f"{counts['failed']} failed"
    )
    return 0 if status["ok"] else 1
