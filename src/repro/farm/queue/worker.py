"""Pull-based queue worker: lease → execute → heartbeat → write back.

A :class:`QueueWorker` runs on any host.  It only ever *pulls*: it asks
the controller for a lease, executes the point through the same
:func:`~repro.farm.points.execute_point` entry the pool children use
(in a freshly spawned child interpreter — crash containment is
identical to the pool), keeps the lease alive with heartbeats from the
parent while the child computes, and reports the row back.  The
controller files the row into the content-addressed store; the worker
never touches store or queue files.

The worker speaks to anything exposing the controller protocol —
a :class:`~repro.farm.queue.controller.QueueController` directly
(the in-process backend) or a :class:`~repro.farm.queue.client.
QueueClient` over HTTP (``repro worker``).  Failure classification
mirrors the pool exactly:

- **timeout / crash** → transient: ``fail(retryable=True)`` — the
  controller requeues while attempts remain;
- **Python exception** in the point → deterministic: never retried;
- **lost lease** (heartbeat rejected — this worker was presumed dead
  and the item re-leased): the child is killed and the result dropped;
  whoever holds the lease now owns the point, and the store-key
  idempotency makes the race harmless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..pool import run_point_in_child
from .jobqueue import LeaseError

__all__ = ["QueueWorker", "WorkerStats"]


@dataclass
class WorkerStats:
    """What one worker did over its lifetime."""

    worker: str
    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    idle_polls: int = 0
    errors: list = field(default_factory=list)

    def summary_line(self) -> str:
        return (
            f"[worker {self.worker}] {self.completed} completed, "
            f"{self.failed} failed, {self.lost_leases} lost lease(s)"
        )


class QueueWorker:
    """Lease/execute/complete loop over a controller or HTTP client."""

    def __init__(
        self,
        client,
        worker_id: str,
        ttl_s: float = 60.0,
        timeout_s: float = 600.0,
        poll_s: float = 0.5,
        executor: Optional[Callable] = None,
    ):
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.client = client
        self.worker_id = worker_id
        self.ttl_s = ttl_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        #: (family, params, timeout_s, heartbeat) -> (status, payload,
        #: duration_s); overridable in tests to fake deaths/results.
        self.executor = executor or self._execute_in_child
        self.stats = WorkerStats(worker=worker_id)

    def _execute_in_child(self, family, params, timeout_s, heartbeat):
        # Heartbeat at ttl/3: three missed beats before the lease dies.
        return run_point_in_child(
            family,
            params,
            timeout_s,
            heartbeat=heartbeat,
            heartbeat_interval_s=max(0.05, self.ttl_s / 3.0),
        )

    # -- the loop ------------------------------------------------------------

    def run_one(self) -> Optional[bool]:
        """Lease and process one item.

        Returns True (completed), False (failed/lost), or None (queue
        was empty).
        """
        item = self.client.lease(self.worker_id, self.ttl_s)
        if item is None:
            self.stats.idle_polls += 1
            return None
        item_id = item["id"]

        def beat() -> None:
            self.client.heartbeat(item_id, self.worker_id, self.ttl_s)

        try:
            status, payload, duration_s = self.executor(
                item["family"], item["params"], self.timeout_s, beat
            )
        except LeaseError:
            # The controller re-leased this item to someone else; the
            # child was killed before this propagated.  Drop and move on.
            self.stats.lost_leases += 1
            return False

        try:
            if status == "ok":
                self.client.complete(
                    item_id, self.worker_id, payload, duration_s
                )
                self.stats.completed += 1
                return True
            self.client.fail(
                item_id,
                self.worker_id,
                payload,
                retryable=status in ("timeout", "crash"),
            )
            self.stats.failed += 1
            self.stats.errors.append(f"{item['family']}: {payload}")
            return False
        except LeaseError:
            # Lost the race at the report step — same story as above.
            self.stats.lost_leases += 1
            return False

    def run(
        self,
        drain: bool = False,
        max_points: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> WorkerStats:
        """Process items until stopped.

        ``drain=True`` exits on the first empty poll (the in-process
        backend and ``repro worker --drain``); otherwise the worker naps
        ``poll_s`` and polls again, forever.  ``max_points`` bounds the
        number of leased items; ``stop()`` is checked between items.
        """
        processed = 0
        while True:
            if stop is not None and stop():
                break
            if max_points is not None and processed >= max_points:
                break
            outcome = self.run_one()
            if outcome is None:
                if drain:
                    break
                time.sleep(self.poll_s)
                continue
            processed += 1
        return self.stats
