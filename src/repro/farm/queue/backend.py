"""In-process queue backend for :func:`repro.farm.service.run_farm`.

``run_farm(backend="queue")`` pushes its cache misses through the full
queue machinery — a durable :class:`FileJobQueue` on disk, the
:class:`QueueController`'s lease/complete protocol, and real
:class:`QueueWorker` loops executing points in spawned children — all
inside one process, with worker threads standing in for worker hosts.

This is the differential harness for the distributed path: the
sequential/pool backend stays the oracle, and
``tests/farm/queue/test_backend.py`` asserts the two backends produce
byte-identical rows.  Everything a remote deployment exercises (lease
handshake, heartbeats, idempotent store writes, expiry recovery) runs
here too; only the HTTP transport is absent.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ...obs import MetricsRegistry
from ..pool import PointOutcome
from ..points import PointSpec
from ..store import ResultStore
from .controller import QueueController
from .jobqueue import FileJobQueue
from .worker import QueueWorker

__all__ = ["run_specs_through_queue"]

#: Lease TTL of the in-process workers.  Short — threads cannot die
#: silently, so expiry only matters under injected failures — but long
#: enough that a loaded CI box never expires a healthy lease between
#: heartbeats (sent every ttl/3).
LOCAL_TTL_S = 15.0


def _outcome_from_item(
    item: dict, spec: PointSpec, store: ResultStore
) -> PointOutcome:
    """Terminal item record -> the PointOutcome the pool would report."""
    if item["state"] == "done" and item["result_key"]:
        record = store.get(item["result_key"])
        if record is not None:
            return PointOutcome(
                spec=spec,
                status="ok",
                row=record["row"],
                attempts=item["attempts"],
                duration_s=item["duration_s"],
                cached=bool(item["cached"]),
            )
    return PointOutcome(
        spec=spec,
        status="failed",
        attempts=item["attempts"],
        duration_s=item["duration_s"],
        error=item["error"] or "queue item did not produce a stored row",
    )


def run_specs_through_queue(
    specs: Sequence[PointSpec],
    store: ResultStore,
    registry: MetricsRegistry,
    jobs: int = 2,
    timeout_s: float = 600.0,
    retries: int = 1,
    lease_ttl_s: float = LOCAL_TTL_S,
    queue_root: Optional[Path] = None,
    on_outcome: Optional[Callable[[PointOutcome], None]] = None,
) -> Tuple[List[PointOutcome], dict]:
    """Execute ``specs`` through controller + N worker loops.

    Returns outcomes in input order plus the controller's final queue
    statistics (peak depth, peak leases, workers seen) for the run
    summary.  ``on_outcome`` fires once per item as it reaches a
    terminal state — the service's progress/counter hook.
    """
    tmp = None
    if queue_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-farm-queue-")
        queue_root = Path(tmp.name)
    try:
        controller = QueueController(
            FileJobQueue(queue_root),
            store=store,
            registry=registry,
            max_attempts=retries + 1,
            default_ttl_s=lease_ttl_s,
        )
        job = controller.submit(specs)
        job_id = job["id"]

        workers = [
            QueueWorker(
                controller,
                f"local-{i}",
                ttl_s=lease_ttl_s,
                timeout_s=timeout_s,
            )
            for i in range(jobs)
        ]
        threads = [
            threading.Thread(
                target=w.run, kwargs={"drain": True}, daemon=True
            )
            for w in workers
        ]
        for thread in threads:
            thread.start()

        # Stream terminal items to the caller as they land (progress +
        # per-family counters), in seq order so output stays stable.
        emitted = 0
        outcomes: List[Optional[PointOutcome]] = [None] * len(specs)

        def drain_terminal() -> None:
            nonlocal emitted
            while emitted < len(specs):
                item = controller.queue.item(f"{job_id}-{emitted:04d}")
                if item is None or item["state"] not in ("done", "failed"):
                    return
                outcome = _outcome_from_item(item, specs[emitted], store)
                outcomes[emitted] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)
                emitted += 1

        while any(thread.is_alive() for thread in threads):
            drain_terminal()
            time.sleep(0.05)
        for thread in threads:
            thread.join()

        # A worker that drained while another's point was being requeued
        # can leave work behind; one final inline drain closes the gap.
        status = controller.job_status(job_id)
        if not status["done"]:
            QueueWorker(
                controller,
                "local-final",
                ttl_s=lease_ttl_s,
                timeout_s=timeout_s,
            ).run(drain=True)
        drain_terminal()
        for seq, outcome in enumerate(outcomes):
            if outcome is None:  # pragma: no cover - terminal safety net
                item = controller.queue.item(f"{job_id}-{seq:04d}")
                outcomes[seq] = _outcome_from_item(
                    item or {"state": "failed", "attempts": 0,
                             "duration_s": 0.0, "error": "item lost",
                             "result_key": None, "cached": False},
                    specs[seq],
                    store,
                )
                if on_outcome is not None:
                    on_outcome(outcomes[seq])

        stats = controller.stats()
        queue_stats = {
            "queue_depth": stats["peak_depth"],
            "lease_count": stats["peak_leased"],
            "worker_count": len(stats["workers_seen"]),
        }
        return list(outcomes), queue_stats
    finally:
        if tmp is not None:
            tmp.cleanup()
