"""HTTP submission API + worker protocol over the queue controller.

A thin, stdlib-only (:mod:`http.server`) JSON facade — every route maps
one-to-one onto a :class:`~repro.farm.queue.controller.QueueController`
method, so the HTTP layer adds transport, never semantics:

===========================================  =================================
``POST /jobs``                               submit families and/or raw points
``GET  /jobs``                               all jobs with state counts
``GET  /jobs/<id>``                          one job's status + item states
``GET  /jobs/<id>/rows``                     finished rows, submission order
``POST /lease``                              worker: lease the next item
``POST /items/<id>/heartbeat``               worker: extend a lease
``POST /items/<id>/complete``                worker: report a finished row
``POST /items/<id>/fail``                    worker: report a failed attempt
``GET  /results/<key>``                      store record, ETag on the key
``GET  /metrics``                            JSON snapshot, or Prometheus
                                             text via ``?format=prometheus``
``GET  /healthz``                            liveness + queue statistics
                                             + store records + uptime
===========================================  =================================

plus the live telemetry plane shared with ``repro dashboard``
(:class:`repro.obs.live.httpd.LiveRoutesMixin`): ``GET /`` and
``GET /dashboard`` (the HTML page), ``GET /events`` (SSE), ``GET
/trends``, ``GET /records``, and ``GET /traces[/<name>]``.

``GET /results/<key>`` serves the content-addressed store directly: the
key *is* the content identity, so the ``ETag`` is the key itself and a
matching ``If-None-Match`` short-circuits to ``304 Not Modified`` with
no body — cached results are immutable, revalidation is free.

Error mapping: a :class:`LeaseError` (stale worker) is ``409 Conflict``,
unknown ids are ``404``, malformed bodies are ``400``.  Workers treat
409 as "drop the work"; everything else is an operational error.

The server is a ``ThreadingHTTPServer`` — the controller's lock is the
serialization point, exactly as for in-process callers.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from ...obs.live.httpd import ApiError, LiveRoutesMixin
from ...obs.live.publisher import TelemetryPublisher
from ..points import PointSpec, expand_family
from .controller import LeaseError, QueueController

__all__ = ["FarmQueueServer", "make_server"]

#: Cap on request bodies (a family submission is a few KiB; a row is
#: smaller).  Anything larger is a client bug, not a bigger experiment.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: The HTTP layer's error type is the shared live-plane one.
_ApiError = ApiError


def _specs_from_body(body: dict) -> List[PointSpec]:
    """Point specs from a ``POST /jobs`` body (families and/or points)."""
    specs: List[PointSpec] = []
    preset = body.get("preset", "paper")
    overrides = body.get("overrides") or {}
    families = body.get("families") or []
    if not isinstance(families, list):
        raise _ApiError(400, "'families' must be a list of family names")
    for name in families:
        try:
            specs.extend(expand_family(name, preset, overrides.get(name)))
        except (KeyError, ValueError) as exc:
            raise _ApiError(400, str(exc)) from None
    for i, point in enumerate(body.get("points") or []):
        if not isinstance(point, dict) or "family" not in point:
            raise _ApiError(400, f"point #{i} needs a 'family' field")
        try:
            specs.append(
                PointSpec(
                    point["family"],
                    int(point.get("index", i)),
                    tuple(sorted(dict(point.get("params") or {}).items())),
                )
            )
        except TypeError as exc:
            raise _ApiError(400, f"point #{i}: {exc}") from None
    if not specs:
        raise _ApiError(400, "submission expands to zero points")
    return specs


class _Handler(LiveRoutesMixin, BaseHTTPRequestHandler):
    """One request; all state lives on ``self.server.controller``.

    JSON plumbing (``_send_json``/``_send_body``/ETags) and the live
    telemetry routes come from :class:`LiveRoutesMixin`.
    """

    server_version = "repro-farm-queue/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _ApiError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError:
            raise _ApiError(400, "request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return body

    # -- dispatch ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        controller: QueueController = self.server.controller
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            handler = self._route(method, path)
            if handler is None:
                raise _ApiError(404, f"no route for {method} {path}")
            handler(controller)
        except _ApiError as exc:
            self._send_json({"error": exc.message}, status=exc.status)
        except LeaseError as exc:
            self._send_json({"error": str(exc)}, status=409)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json({"error": f"{type(exc).__name__}: {exc}"}, status=500)

    def _route(self, method: str, path: str):
        if method == "GET":
            if path in ("/", "/dashboard"):
                return lambda c: self._get_dashboard()
            if path == "/events":
                return lambda c: self._get_events()
            if path == "/trends":
                return lambda c: self._get_trends()
            if path == "/records":
                return lambda c: self._get_records()
            if path == "/traces":
                return lambda c: self._get_traces()
            if path == "/healthz":
                return self._get_healthz
            if path == "/metrics":
                return self._get_metrics
            if path == "/jobs":
                return self._get_jobs
            m = re.fullmatch(r"/jobs/([\w-]+)", path)
            if m:
                return lambda c: self._get_job(c, m.group(1))
            m = re.fullmatch(r"/jobs/([\w-]+)/rows", path)
            if m:
                return lambda c: self._get_job_rows(c, m.group(1))
            m = re.fullmatch(r"/results/([0-9a-f]{8,64})", path)
            if m:
                return lambda c: self._get_result(m.group(1))
            m = re.fullmatch(r"/traces/([^/]+)", path)
            if m:
                return lambda c: self._get_trace_file(m.group(1))
        elif method == "POST":
            if path == "/jobs":
                return self._post_jobs
            if path == "/lease":
                return self._post_lease
            m = re.fullmatch(r"/items/([\w-]+)/(heartbeat|complete|fail)", path)
            if m:
                return lambda c: self._post_item(c, m.group(1), m.group(2))
        return None

    # -- routes --------------------------------------------------------------

    def _get_healthz(self, controller) -> None:
        self._send_json(
            {
                "ok": True,
                "stats": controller.stats(),
                **self._healthz_extras(),
            }
        )

    def _get_metrics(self, controller) -> None:
        if self._wants_prometheus():
            self._send_prometheus(controller.registry)
            return
        self._send_json(
            {
                "snapshot": controller.registry.snapshot(),
                "render": controller.registry.render(),
            }
        )

    def _get_jobs(self, controller) -> None:
        jobs = []
        for job in controller.queue.jobs():
            status = controller.job_status(job["id"])
            status.pop("item_states", None)
            jobs.append(status)
        self._send_json({"jobs": jobs})

    def _get_job(self, controller, job_id: str) -> None:
        status = controller.job_status(job_id)
        if status is None:
            raise _ApiError(404, f"unknown job {job_id!r}")
        self._send_json(status)

    def _get_job_rows(self, controller, job_id: str) -> None:
        status = controller.job_status(job_id)
        if status is None:
            raise _ApiError(404, f"unknown job {job_id!r}")
        rows = controller.job_rows(job_id)
        self._send_json(
            {
                "id": job_id,
                "done": status["done"],
                "rows": [
                    {
                        "family": item["family"],
                        "index": item["index"],
                        "state": item["state"],
                        "row": row,
                    }
                    for item, row in zip(status["item_states"], rows)
                ],
            }
        )

    def _post_jobs(self, controller) -> None:
        body = self._read_body()
        specs = _specs_from_body(body)
        job = controller.submit(specs, use_cache=body.get("use_cache", True))
        self._send_json({"job": job}, status=201)

    def _post_lease(self, controller) -> None:
        body = self._read_body()
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise _ApiError(400, "'worker' (string id) is required")
        ttl = body.get("ttl_s")
        item = controller.lease(worker, float(ttl) if ttl is not None else None)
        if item is None:
            self._send_empty(204)
        else:
            self._send_json(item)

    def _post_item(self, controller, item_id: str, action: str) -> None:
        body = self._read_body()
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise _ApiError(400, "'worker' (string id) is required")
        if action == "heartbeat":
            ttl = body.get("ttl_s")
            record = controller.heartbeat(
                item_id, worker, float(ttl) if ttl is not None else None
            )
        elif action == "complete":
            row = body.get("row")
            if not isinstance(row, dict):
                raise _ApiError(400, "'row' (object) is required")
            record = controller.complete(
                item_id, worker, row, float(body.get("duration_s") or 0.0)
            )
        else:  # fail
            record = controller.fail(
                item_id,
                worker,
                str(body.get("error") or "worker reported failure"),
                retryable=bool(body.get("retryable", True)),
            )
        self._send_json(record)


class FarmQueueServer(ThreadingHTTPServer):
    """The queue service: a threading HTTP server bound to a controller.

    Also hosts the live telemetry plane: ``result_store`` (the
    controller's store), an optional ``trend_store``/``traces_dir``,
    and a :class:`TelemetryPublisher` feeding ``GET /events`` — built
    here when not injected, but its poll thread is only started by the
    caller (``serve_main`` does; tests poll by hand).
    """

    daemon_threads = True

    def __init__(
        self,
        controller: QueueController,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        trend_store=None,
        traces_dir=None,
        publisher: Optional[TelemetryPublisher] = None,
    ):
        super().__init__((host, port), _Handler)
        self.controller = controller
        self.verbose = verbose
        self.result_store = controller.store
        self.trend_store = trend_store
        self.traces_dir = traces_dir
        if publisher is None:
            from ...obs.live.publisher import make_collector

            publisher = TelemetryPublisher(
                make_collector(
                    controller=controller,
                    store=controller.store,
                    trend_store=trend_store,
                )
            )
        self.publisher = publisher
        self.started_monotonic = time.monotonic()

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def make_server(
    controller: QueueController,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    trend_store=None,
    traces_dir=None,
    publisher: Optional[TelemetryPublisher] = None,
) -> FarmQueueServer:
    """Bind (``port=0`` picks a free port) — call ``serve_forever()``."""
    return FarmQueueServer(
        controller,
        host=host,
        port=port,
        verbose=verbose,
        trend_store=trend_store,
        traces_dir=traces_dir,
        publisher=publisher,
    )
