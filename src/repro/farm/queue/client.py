"""Stdlib HTTP client for the farm queue service.

:class:`QueueClient` mirrors the :class:`~repro.farm.queue.controller.
QueueController` surface over :mod:`urllib.request`, so a
:class:`~repro.farm.queue.worker.QueueWorker` can be handed either one
interchangeably.  Protocol mapping:

- ``204`` from ``/lease`` → ``None`` (queue empty);
- ``409`` → :class:`~repro.farm.queue.jobqueue.LeaseError` (stale
  worker: drop the work);
- ``304`` from ``/results/<key>`` with ``If-None-Match`` → ``None``
  (the caller's cached copy is current);
- any other non-2xx → :class:`QueueServiceError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from .jobqueue import LeaseError

__all__ = ["QueueClient", "QueueServiceError"]


class QueueServiceError(Exception):
    """The service answered with an unexpected status (or not at all)."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class QueueClient:
    """JSON-over-HTTP twin of the controller protocol."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ):
        """(status, payload_dict_or_None); raises on transport failure."""
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        req.add_header("Accept", "application/json")
        if data is not None:
            req.add_header("Content-Type", "application/json")
        for name, value in (headers or {}).items():
            req.add_header(name, value)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                raw = resp.read()
                return resp.status, json.loads(raw) if raw else None
        except urllib.error.HTTPError as exc:
            if exc.code == 304:  # urllib raises on 3xx it does not follow
                return 304, None
            raw = exc.read()
            try:
                payload = json.loads(raw) if raw else {}
            except ValueError:
                payload = {}
            message = payload.get("error") or f"HTTP {exc.code}"
            if exc.code == 409:
                raise LeaseError(message) from None
            raise QueueServiceError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise QueueServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        families: Optional[list] = None,
        points: Optional[list] = None,
        preset: str = "paper",
        overrides: Optional[dict] = None,
        use_cache: bool = True,
    ) -> dict:
        """``POST /jobs`` — returns the job record (id, cached, pending)."""
        _, payload = self._request(
            "POST",
            "/jobs",
            {
                "families": families or [],
                "points": points or [],
                "preset": preset,
                "overrides": overrides or {},
                "use_cache": use_cache,
            },
        )
        return payload["job"]

    def job_status(self, job_id: str) -> dict:
        _, payload = self._request("GET", f"/jobs/{job_id}")
        return payload

    def job_rows(self, job_id: str) -> dict:
        _, payload = self._request("GET", f"/jobs/{job_id}/rows")
        return payload

    def jobs(self) -> list:
        _, payload = self._request("GET", "/jobs")
        return payload["jobs"]

    def wait_job(
        self, job_id: str, poll_s: float = 0.5, timeout_s: float = 3600.0
    ) -> dict:
        """Poll until the job's items are all done/failed; returns status."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.job_status(job_id)
            if status["done"]:
                return status
            if time.monotonic() >= deadline:
                raise QueueServiceError(
                    f"job {job_id} not done after {timeout_s:.0f}s "
                    f"(counts: {status['counts']})"
                )
            time.sleep(poll_s)

    # -- the worker protocol -------------------------------------------------

    def lease(self, worker: str, ttl_s: Optional[float] = None) -> Optional[dict]:
        status, payload = self._request(
            "POST", "/lease", {"worker": worker, "ttl_s": ttl_s}
        )
        return None if status == 204 else payload

    def heartbeat(
        self, item_id: str, worker: str, ttl_s: Optional[float] = None
    ) -> dict:
        _, payload = self._request(
            "POST",
            f"/items/{item_id}/heartbeat",
            {"worker": worker, "ttl_s": ttl_s},
        )
        return payload

    def complete(
        self, item_id: str, worker: str, row: dict, duration_s: float = 0.0
    ) -> dict:
        _, payload = self._request(
            "POST",
            f"/items/{item_id}/complete",
            {"worker": worker, "row": row, "duration_s": duration_s},
        )
        return payload

    def fail(
        self, item_id: str, worker: str, error: str, retryable: bool = True
    ) -> dict:
        _, payload = self._request(
            "POST",
            f"/items/{item_id}/fail",
            {"worker": worker, "error": error, "retryable": retryable},
        )
        return payload

    # -- results & health ----------------------------------------------------

    def result(self, key: str, etag: Optional[str] = None) -> Optional[dict]:
        """``GET /results/<key>``; ``etag`` revalidates (None on 304)."""
        headers = {"If-None-Match": f'"{etag}"'} if etag else None
        try:
            status, payload = self._request(
                "GET", f"/results/{key}", headers=headers
            )
        except QueueServiceError as exc:
            if exc.status == 404:
                return None
            raise
        return None if status == 304 else payload

    def metrics(self) -> dict:
        _, payload = self._request("GET", "/metrics")
        return payload

    def health(self) -> dict:
        _, payload = self._request("GET", "/healthz")
        return payload
