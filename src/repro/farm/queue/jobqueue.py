"""Durable, crash-safe file-backed job queue for farm points.

Layout (everything JSON, everything atomic-rename written, exactly like
:class:`~repro.farm.store.ResultStore` — no SQLite, no JSONL appends)::

    <root>/jobs/<job_id>.json     one immutable record per submitted job
    <root>/items/<item_id>.json   one mutable record per work item

A *work item* is one ``(spec, row)`` unit: the point spec it carries in,
plus — once a worker completes it — the result key its row was stored
under.  Items move through ``pending → leased → done | failed``; every
transition rewrites the item file atomically, so a controller that
crashes mid-run restarts from disk with nothing lost: pending items are
still pending, leased items keep their lease (and expire normally if
the worker died with the controller), finished items stay finished.

The queue is a **single-controller** structure: one process owns the
directory and serializes mutations behind an in-process lock.  Workers
never touch these files — they talk to the controller (directly, or
through the HTTP API in :mod:`~repro.farm.queue.httpd`), which is what
makes the lease handshake atomic across any number of worker hosts.

Time enters only through the injectable ``clock`` (defaults to
:func:`time.time`); tests drive lease expiry with a fake clock instead
of sleeping.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = ["ITEM_STATES", "FileJobQueue", "LeaseError"]

#: Legal ``state`` values of a work item, in lifecycle order.
ITEM_STATES = ("pending", "leased", "done", "failed")


class LeaseError(Exception):
    """A worker acted on an item it does not (or no longer does) hold.

    Raised on heartbeat/complete/fail when the item is unknown, not
    leased, or leased by a different worker — the caller lost the race
    (its lease expired and someone else picked the item up) and must
    drop the work on the floor; the store-level idempotency makes that
    safe.
    """


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` to ``path`` via temp-file + rename (never torn)."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class FileJobQueue:
    """Work items on disk; every mutation is an atomic file rewrite."""

    def __init__(self, root: Path, clock: Callable[[], float] = time.time):
        self.root = Path(root)
        self.clock = clock
        self._lock = threading.RLock()
        #: item id -> record (the in-memory mirror of ``items/*.json``).
        self._items: Dict[str, dict] = {}
        #: job id -> record.
        self._jobs: Dict[str, dict] = {}
        #: FIFO of pending item ids (submission order).
        self._pending: deque = deque()
        (self.root / "jobs").mkdir(parents=True, exist_ok=True)
        (self.root / "items").mkdir(parents=True, exist_ok=True)
        self._reload()

    # -- durability ----------------------------------------------------------

    def _reload(self) -> None:
        """Rebuild the in-memory index from disk (controller restart)."""
        for path in sorted((self.root / "jobs").glob("*.json")):
            record = self._read(path)
            if record and "id" in record:
                self._jobs[record["id"]] = record
        items = []
        for path in sorted((self.root / "items").glob("*.json")):
            record = self._read(path)
            if record and record.get("state") in ITEM_STATES:
                items.append(record)
        # Submission order: jobs in creation order, items by seq within.
        items.sort(
            key=lambda r: (
                self._jobs.get(r["job"], {}).get("created_at", 0.0),
                r["job"],
                r["seq"],
            )
        )
        for record in items:
            self._items[record["id"]] = record
            if record["state"] == "pending":
                self._pending.append(record["id"])

    @staticmethod
    def _read(path: Path) -> Optional[dict]:
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None  # a corrupt record is dropped, never fatal
        return record if isinstance(record, dict) else None

    def _persist_item(self, record: dict) -> None:
        _atomic_write_json(self.root / "items" / f"{record['id']}.json", record)

    def _persist_job(self, record: dict) -> None:
        _atomic_write_json(self.root / "jobs" / f"{record['id']}.json", record)

    # -- submission ----------------------------------------------------------

    def enqueue_job(self, items: List[dict], meta: Optional[dict] = None) -> dict:
        """Create one job from item payloads; returns the job record.

        Each payload needs ``family``, ``params``, ``index``; an optional
        ``result_key`` + ``cached=True`` marks an item already satisfied
        by the result store (it is born ``done`` and never leased).
        """
        with self._lock:
            job_id = uuid.uuid4().hex[:12]
            now = self.clock()
            job = {
                "id": job_id,
                "created_at": now,
                "items": len(items),
                "meta": dict(meta or {}),
            }
            self._persist_job(job)
            self._jobs[job_id] = job
            for seq, payload in enumerate(items):
                cached = bool(payload.get("cached"))
                record = {
                    "id": f"{job_id}-{seq:04d}",
                    "job": job_id,
                    "seq": seq,
                    "family": payload["family"],
                    "params": dict(payload["params"]),
                    "index": payload.get("index", seq),
                    "state": "done" if cached else "pending",
                    "attempts": 0,
                    "lease": None,
                    "result_key": payload.get("result_key"),
                    "cached": cached,
                    "error": None,
                    "duration_s": 0.0,
                }
                self._persist_item(record)
                self._items[record["id"]] = record
                if record["state"] == "pending":
                    self._pending.append(record["id"])
            return dict(job)

    # -- the worker protocol -------------------------------------------------

    def lease(self, worker: str, ttl_s: float) -> Optional[dict]:
        """Hand the oldest pending item to ``worker`` for ``ttl_s`` seconds."""
        with self._lock:
            while self._pending:
                item_id = self._pending.popleft()
                record = self._items.get(item_id)
                if record is None or record["state"] != "pending":
                    continue  # resolved elsewhere (e.g. cache short-circuit)
                now = self.clock()
                prior = record["lease"] or {}
                record["state"] = "leased"
                record["attempts"] += 1
                record["lease"] = {
                    "worker": worker,
                    "leased_at": now,
                    "expires_at": now + ttl_s,
                    "count": int(prior.get("count", 0)) + 1,
                }
                self._persist_item(record)
                return dict(record)
            return None

    def _held(self, item_id: str, worker: str) -> dict:
        record = self._items.get(item_id)
        if record is None:
            raise LeaseError(f"unknown item {item_id!r}")
        if record["state"] != "leased" or not record["lease"]:
            raise LeaseError(f"item {item_id!r} is {record['state']}, not leased")
        if record["lease"]["worker"] != worker:
            raise LeaseError(
                f"item {item_id!r} is leased by {record['lease']['worker']!r}, "
                f"not {worker!r}"
            )
        return record

    def heartbeat(self, item_id: str, worker: str, ttl_s: float) -> dict:
        """Extend ``worker``'s lease on ``item_id`` by ``ttl_s`` from now."""
        with self._lock:
            record = self._held(item_id, worker)
            record["lease"]["expires_at"] = self.clock() + ttl_s
            self._persist_item(record)
            return dict(record)

    def complete(
        self,
        item_id: str,
        worker: str,
        result_key: str,
        duration_s: float = 0.0,
        cached: bool = False,
    ) -> dict:
        """Mark a leased item done; its row lives in the store under
        ``result_key``."""
        with self._lock:
            record = self._held(item_id, worker)
            record["state"] = "done"
            record["lease"] = None
            record["result_key"] = result_key
            record["cached"] = cached
            record["error"] = None
            record["duration_s"] = duration_s
            self._persist_item(record)
            return dict(record)

    def fail(
        self, item_id: str, worker: str, error: str, requeue: bool = False
    ) -> dict:
        """Mark a leased item failed, or push it back to pending."""
        with self._lock:
            record = self._held(item_id, worker)
            record["lease"] = None
            record["error"] = error
            if requeue:
                record["state"] = "pending"
                self._pending.append(record["id"])
            else:
                record["state"] = "failed"
            self._persist_item(record)
            return dict(record)

    def fail_pending(self, item_id: str, error: str) -> dict:
        """Terminally fail a *pending* item (attempt budget exhausted).

        Used by the controller's lease reaper: an item whose lease
        expired with no attempts left must not wait for a worker it will
        never get.  The id stays in the pending deque; :meth:`lease`
        skips non-pending entries.
        """
        with self._lock:
            record = self._items[item_id]
            if record["state"] != "pending":
                raise LeaseError(
                    f"item {item_id!r} is {record['state']}, not pending"
                )
            record["state"] = "failed"
            record["lease"] = None
            record["error"] = error
            self._persist_item(record)
            return dict(record)

    def expire_leases(self) -> List[dict]:
        """Requeue every leased item whose lease deadline has passed."""
        with self._lock:
            now = self.clock()
            expired = []
            for record in self._items.values():
                lease = record["lease"]
                if record["state"] != "leased" or lease is None:
                    continue
                if lease["expires_at"] <= now:
                    record["state"] = "pending"
                    record["error"] = (
                        f"lease by {lease['worker']!r} expired after "
                        f"{lease['expires_at'] - lease['leased_at']:.1f}s"
                    )
                    record["lease"] = dict(lease, expired=True)
                    self._persist_item(record)
                    # workers re-lease in submission order, expiries last
                    self._pending.append(record["id"])
                    expired.append(dict(record))
                    record["lease"] = None
            return expired

    # -- introspection -------------------------------------------------------

    def job(self, job_id: str) -> Optional[dict]:
        with self._lock:
            record = self._jobs.get(job_id)
            return dict(record) if record else None

    def jobs(self) -> List[dict]:
        with self._lock:
            return [
                dict(r)
                for r in sorted(
                    self._jobs.values(), key=lambda r: (r["created_at"], r["id"])
                )
            ]

    def item(self, item_id: str) -> Optional[dict]:
        with self._lock:
            record = self._items.get(item_id)
            return dict(record) if record else None

    def items(self, job_id: Optional[str] = None) -> List[dict]:
        """Item records (one job's, or all), in submission order."""
        with self._lock:
            records = [
                dict(r)
                for r in self._items.values()
                if job_id is None or r["job"] == job_id
            ]
        records.sort(key=lambda r: (r["job"], r["seq"]))
        return records

    def counts(self, job_id: Optional[str] = None) -> Dict[str, int]:
        """``{state: n}`` over one job's (or all) items; every state present."""
        with self._lock:
            out = {state: 0 for state in ITEM_STATES}
            for record in self._items.values():
                if job_id is None or record["job"] == job_id:
                    out[record["state"]] += 1
            return out

    def active_workers(self) -> List[str]:
        """Distinct worker ids currently holding an unexpired lease."""
        with self._lock:
            now = self.clock()
            return sorted(
                {
                    r["lease"]["worker"]
                    for r in self._items.values()
                    if r["state"] == "leased"
                    and r["lease"] is not None
                    and r["lease"]["expires_at"] > now
                }
            )

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"<FileJobQueue {self.root} jobs={len(self._jobs)} "
            f"pending={c['pending']} leased={c['leased']} "
            f"done={c['done']} failed={c['failed']}>"
        )
