"""The queue controller: job state, leases, idempotency, telemetry.

One :class:`QueueController` owns a :class:`~repro.farm.queue.jobqueue.
FileJobQueue` and the :class:`~repro.farm.store.ResultStore` results are
written into.  It is the single authority every execution path talks
to — the HTTP service wraps it one-to-one, the in-process queue backend
of :func:`~repro.farm.service.run_farm` calls it directly, and workers
never see the queue files at all.

Idempotency is anchored on the existing point hashes: an item's result
key is ``result_key(code_fingerprint, point_hash)`` — exactly the key
``run_farm`` caches under — so

- **submission** short-circuits points the store already holds (born
  ``done``, never leased);
- **leasing** re-checks the store, so a duplicate item whose twin
  finished after submission becomes a cache hit instead of a
  recomputation;
- **completion** of re-leased work (a worker died, its lease expired, a
  second worker finished the point) writes the same key — one store
  record, byte-identical row, no matter how many workers raced.

Telemetry goes through the shared :class:`repro.obs.MetricsRegistry`
(``farm.queue.*`` series — depth, leases, expiries, completions), the
same registry ``repro farm metrics`` renders.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ...obs import MetricsRegistry
from ..fingerprint import code_fingerprint, result_key
from ..points import PointSpec
from ..store import ResultStore
from .jobqueue import FileJobQueue, LeaseError

__all__ = ["QueueController", "LeaseError"]

#: Default lease TTL — long enough for heartbeats every ttl/3 to be
#: leisurely, short enough that a dead worker's point is recovered fast.
DEFAULT_TTL_S = 60.0


class QueueController:
    """Tracks job state, expires dead leases, enforces idempotency."""

    def __init__(
        self,
        queue: FileJobQueue,
        store: Optional[ResultStore] = None,
        registry: Optional[MetricsRegistry] = None,
        max_attempts: int = 2,
        default_ttl_s: float = DEFAULT_TTL_S,
        fingerprint: Optional[str] = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue = queue
        self.store = store if store is not None else ResultStore()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_attempts = max_attempts
        self.default_ttl_s = default_ttl_s
        self.fingerprint = fingerprint or code_fingerprint()
        self._lock = threading.RLock()
        #: peak statistics for the run summary (queue_depth / lease_count /
        #: worker_count in last-run.json).
        self.peak_depth = 0
        self.peak_leased = 0
        self.workers_seen: set = set()
        self._update_gauges()

    # -- gauges --------------------------------------------------------------

    def _update_gauges(self) -> None:
        counts = self.queue.counts()
        leased = counts["leased"]
        self.peak_depth = max(self.peak_depth, counts["pending"])
        self.peak_leased = max(self.peak_leased, leased)
        self.registry.gauge("farm.queue.depth").set(counts["pending"])
        self.registry.gauge("farm.queue.leased").set(leased)
        self.registry.gauge("farm.queue.workers").set(
            len(self.queue.active_workers())
        )

    # -- submission ----------------------------------------------------------

    def item_key(self, family: str, params: dict) -> str:
        """The store key this controller files a point's row under."""
        spec = PointSpec(family, 0, tuple(sorted(params.items())))
        return result_key(self.fingerprint, spec.point_hash())

    def submit(self, specs: Sequence[PointSpec], use_cache: bool = True) -> dict:
        """Enqueue one job from point specs; cached points are born done.

        Returns the job record extended with ``cached`` (points satisfied
        by the store at submission time) and ``pending`` counts.
        """
        with self._lock:
            items = []
            cached = 0
            for spec in specs:
                key = result_key(self.fingerprint, spec.point_hash())
                hit = self.store.get(key) if use_cache else None
                if hit is not None:
                    cached += 1
                    self.registry.counter(
                        "farm.queue.cached", family=spec.family
                    ).inc()
                items.append(
                    {
                        "family": spec.family,
                        "params": spec.params_dict,
                        "index": spec.index,
                        "result_key": key if hit is not None else None,
                        "cached": hit is not None,
                    }
                )
                self.registry.counter(
                    "farm.queue.submitted", family=spec.family
                ).inc()
            job = self.queue.enqueue_job(
                items, meta={"families": sorted({s.family for s in specs})}
            )
            self._update_gauges()
            return dict(job, cached=cached, pending=len(specs) - cached)

    # -- the worker protocol -------------------------------------------------

    def lease(self, worker: str, ttl_s: Optional[float] = None) -> Optional[dict]:
        """Expire dead leases, then hand ``worker`` the next runnable item.

        Items whose result key already resolves in the store (a twin
        point finished meanwhile) are completed on the spot — the worker
        never sees them; that is the "duplicate work is a cache hit"
        guarantee.
        """
        ttl = ttl_s if ttl_s is not None else self.default_ttl_s
        if ttl <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl}")
        with self._lock:
            self.expire_leases()
            self.workers_seen.add(worker)
            while True:
                record = self.queue.lease(worker, ttl)
                if record is None:
                    self._update_gauges()
                    return None
                key = self.item_key(record["family"], record["params"])
                if self.store.get(key) is not None:
                    # already computed elsewhere: cache hit, not a recompute
                    self.queue.complete(
                        record["id"], worker, key, cached=True
                    )
                    self.registry.counter(
                        "farm.queue.cached", family=record["family"]
                    ).inc()
                    continue
                self.registry.counter(
                    "farm.queue.leases", family=record["family"]
                ).inc()
                self._update_gauges()
                return dict(record, result_key=key)

    def heartbeat(
        self, item_id: str, worker: str, ttl_s: Optional[float] = None
    ) -> dict:
        """Extend a live lease; raises :class:`LeaseError` if it was lost."""
        ttl = ttl_s if ttl_s is not None else self.default_ttl_s
        record = self.queue.heartbeat(item_id, worker, ttl)
        self.registry.counter("farm.queue.heartbeats").inc()
        return record

    def complete(
        self, item_id: str, worker: str, row: dict, duration_s: float = 0.0
    ) -> dict:
        """File a finished point's row in the store and close the item.

        Writing is idempotent on the result key: if the key is already
        present (the lease expired and a twin completion won the race)
        the existing record is kept untouched — exactly one store record
        ever exists per point.
        """
        with self._lock:
            record = self.queue.item(item_id)
            if record is None:
                raise LeaseError(f"unknown item {item_id!r}")
            lease = record["lease"] or {}
            if record["state"] != "leased" or lease.get("worker") != worker:
                # Reject the stale holder *before* touching the store — a
                # presumed-dead worker must not file rows.
                raise LeaseError(
                    f"item {item_id!r} is not leased by {worker!r}"
                )
            key = self.item_key(record["family"], record["params"])
            duplicate = self.store.get(key) is not None
            if not duplicate:
                self.store.put(
                    key,
                    {
                        "family": record["family"],
                        "params": record["params"],
                        "point_hash": PointSpec(
                            record["family"],
                            0,
                            tuple(sorted(record["params"].items())),
                        ).point_hash(),
                        "fingerprint": self.fingerprint,
                        "row": row,
                        "duration_s": duration_s,
                        "attempts": record["attempts"],
                    },
                )
            else:
                self.registry.counter(
                    "farm.queue.duplicates", family=record["family"]
                ).inc()
            record = self.queue.complete(
                item_id, worker, key, duration_s=duration_s
            )
            self.registry.counter(
                "farm.queue.completed", family=record["family"]
            ).inc()
            self.registry.histogram(
                "farm.point.duration_ms", family=record["family"]
            ).observe(duration_s * 1000.0)
            self._update_gauges()
            return record

    def fail(
        self, item_id: str, worker: str, error: str, retryable: bool = True
    ) -> dict:
        """Record a failed attempt; transient failures requeue while
        attempts remain, deterministic ones fail the item immediately."""
        with self._lock:
            record = self.queue.item(item_id)
            if record is None:
                raise LeaseError(f"unknown item {item_id!r}")
            requeue = retryable and record["attempts"] < self.max_attempts
            record = self.queue.fail(item_id, worker, error, requeue=requeue)
            kind = "retried" if requeue else "failed"
            self.registry.counter(
                f"farm.queue.{kind}", family=record["family"]
            ).inc()
            self._update_gauges()
            return record

    def expire_leases(self) -> List[dict]:
        """Requeue items whose worker went silent past its TTL.

        Items that exhausted their attempt budget while leased fail
        instead of requeueing — a worker that dies on a point every time
        must not keep the job alive forever.
        """
        with self._lock:
            expired = self.queue.expire_leases()
            for record in expired:
                self.registry.counter(
                    "farm.queue.leases_expired", family=record["family"]
                ).inc()
                if record["attempts"] >= self.max_attempts:
                    self.queue.fail_pending(
                        record["id"], record["error"] or "lease expired"
                    )
                    self.registry.counter(
                        "farm.queue.failed", family=record["family"]
                    ).inc()
            if expired:
                self._update_gauges()
            return expired

    # -- introspection -------------------------------------------------------

    def job_status(self, job_id: str) -> Optional[dict]:
        """Job record + per-state counts + per-item summaries, or None."""
        job = self.queue.job(job_id)
        if job is None:
            return None
        self.expire_leases()
        items = self.queue.items(job_id)
        counts = {state: 0 for state in ("pending", "leased", "done", "failed")}
        for record in items:
            counts[record["state"]] += 1
        done = counts["done"] + counts["failed"] == len(items)
        return dict(
            job,
            counts=counts,
            done=done,
            ok=done and counts["failed"] == 0,
            item_states=[
                {
                    "id": r["id"],
                    "family": r["family"],
                    "index": r["index"],
                    "state": r["state"],
                    "attempts": r["attempts"],
                    "cached": r["cached"],
                    "result_key": r["result_key"],
                    "error": r["error"],
                }
                for r in items
            ],
        )

    def job_rows(self, job_id: str) -> List[Optional[dict]]:
        """The job's rows in submission order (None for unfinished/failed).

        Rows are read back from the result store — the single source of
        truth — so a re-leased, twice-computed point still yields exactly
        the bytes its one store record holds.
        """
        rows: List[Optional[dict]] = []
        for record in self.queue.items(job_id):
            if record["state"] == "done" and record["result_key"]:
                hit = self.store.get(record["result_key"])
                rows.append(hit["row"] if hit else None)
            else:
                rows.append(None)
        return rows

    def stats(self) -> dict:
        """Live queue statistics (also mirrored into the gauges)."""
        with self._lock:
            self.expire_leases()
            counts = self.queue.counts()
            workers = self.queue.active_workers()
            self._update_gauges()
            return {
                "pending": counts["pending"],
                "leased": counts["leased"],
                "done": counts["done"],
                "failed": counts["failed"],
                "jobs": len(self.queue.jobs()),
                "workers": workers,
                "peak_depth": self.peak_depth,
                "peak_leased": self.peak_leased,
                "workers_seen": sorted(self.workers_seen),
            }
