"""MPI datatypes.

Payloads in this system are numpy arrays (or raw sizes for timing-only
messages), so a datatype is a thin record tying an MPI name to a numpy
dtype and an element size — enough to size messages and to pick the
right NIC reduce kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """One MPI basic datatype."""

    name: str
    np_dtype: np.dtype
    #: True when NIC reduces must use the softfloat path.
    is_float: bool

    @property
    def extent(self) -> int:
        """Size of one element in bytes."""
        return self.np_dtype.itemsize

    def __repr__(self) -> str:
        return f"<Datatype {self.name}>"


def _dt(name: str, np_type, is_float: bool) -> Datatype:
    return Datatype(name, np.dtype(np_type), is_float)


DOUBLE = _dt("MPI_DOUBLE", np.float64, True)
FLOAT = _dt("MPI_FLOAT", np.float32, True)
INT = _dt("MPI_INT", np.int32, False)
LONG = _dt("MPI_LONG", np.int64, False)
BYTE = _dt("MPI_BYTE", np.uint8, False)
CHAR = _dt("MPI_CHAR", np.uint8, False)

BY_NAME = {d.name: d for d in (DOUBLE, FLOAT, INT, LONG, BYTE, CHAR)}


def from_array(arr: np.ndarray) -> Datatype:
    """Infer the MPI datatype of a numpy array."""
    for d in BY_NAME.values():
        if d.np_dtype == arr.dtype:
            return d
    # Unknown dtypes still move as bytes; reduces will reject them.
    return Datatype(f"MPI_OPAQUE[{arr.dtype}]", arr.dtype, False)
