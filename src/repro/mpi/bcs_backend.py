"""MPI on top of the BCS API (paper Figure 13 correspondence).

Every MPI primitive maps to one BCS call:

===================  ==========================================
MPI                  BCS
===================  ==========================================
MPI_Send/Isend       bcs_send(blocking / non-blocking)
MPI_Recv/Irecv       bcs_recv(blocking / non-blocking)
MPI_Test/Wait        bcs_test(non-blocking / blocking)
MPI_Testall/Waitall  bcs_testall(non-blocking / blocking)
MPI_Barrier          bcs_barrier
MPI_Bcast            bcs_bcast
MPI_Reduce           bcs_reduce(non-all)
MPI_Allreduce        bcs_reduce(all)
scatter/gather/...   composed over the NIC p2p primitives
===================  ==========================================
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from ..api.bcs_api import BcsApi
from .communicator import ANY_SOURCE, ANY_TAG, Communicator
from .ops import resolve
from .request import MpiRequest


class BcsCommunicator(Communicator):
    """An MPI communicator backed by the BCS-MPI runtime."""

    def __init__(self, runtime, handle, info, comm_rank: int):
        self._runtime = runtime
        self._api = BcsApi(runtime)
        self._handle = handle
        self._info = info
        self._rank = comm_rank

    # -- identity -------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._info.size

    @property
    def backend_name(self) -> str:
        """Identifies the runtime flavour ("bcs")."""
        return "bcs"

    # -- group operations (extension: the paper lists MPI groups as not
    # yet implemented; we provide split so NPB codes needing groups run) ----

    def split(self, member_world_comm_ranks: Sequence[int]) -> Optional["BcsCommunicator"]:
        """Create a sub-communicator over the given ranks of *this* comm.

        Returns the new communicator for members, None for non-members.
        All members must call with the same rank list.
        """
        world_ranks = [self._info.world_ranks[r] for r in member_world_comm_ranks]
        if self._rank not in member_world_comm_ranks:
            return None
        new_info = self._runtime.register_comm(self._info.job, world_ranks)
        new_rank = list(member_world_comm_ranks).index(self._rank)
        return BcsCommunicator(self._runtime, self._handle, new_info, new_rank)

    # -- point-to-point ----------------------------------------------------------

    def isend(self, data: Any = None, dest: int = 0, tag: int = 0, size=None) -> MpiRequest:
        req = self._api.post_send(
            self._handle, self._info, self._rank, dest, data, tag, size
        )
        return MpiRequest(req, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, size=None) -> MpiRequest:
        req = self._api.post_recv(
            self._handle, self._info, self._rank, source, tag, size
        )
        return MpiRequest(req, "irecv")

    def send(self, data: Any = None, dest: int = 0, tag: int = 0, size=None) -> Generator:
        yield from self._api.send(
            self._handle, self._info, self._rank, dest, data, tag, size
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, size=None) -> Generator:
        req = yield from self._api.recv(
            self._handle, self._info, self._rank, source, tag, size
        )
        return req.payload

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe of the unexpected-message queue."""
        return self._api.probe(self._handle, self._info, self._rank, source, tag)

    def cancel(self, req: MpiRequest) -> bool:
        """MPI_Cancel: withdraw an unmatched non-blocking receive.

        True if cancelled (the request completes with a None payload);
        False if the message was already matched and will arrive.
        """
        if req.kind != "irecv":
            raise ValueError("only receive requests can be cancelled")
        return self._api.cancel_recv(self._handle, req.backend_req)

    # -- completion ------------------------------------------------------------------

    def wait(self, req: MpiRequest) -> Generator:
        yield from self._api.wait(self._handle, [req.backend_req])
        return req.payload

    def waitall(self, reqs: Sequence[MpiRequest]) -> Generator:
        yield from self._api.wait(self._handle, [r.backend_req for r in reqs])
        return [r.payload for r in reqs]

    # -- collectives -------------------------------------------------------------------

    def barrier(self) -> Generator:
        yield from self._api.barrier(self._handle, self._info, self._rank)

    def bcast(self, data: Any = None, root: int = 0, size=None) -> Generator:
        result = yield from self._api.bcast(
            self._handle, self._info, self._rank, data, root, size
        )
        return result

    def reduce(self, data: Any, op, root: int = 0) -> Generator:
        result = yield from self._api.reduce(
            self._handle, self._info, self._rank, data, resolve(op).kernel, root
        )
        return result

    def allreduce(self, data: Any, op) -> Generator:
        result = yield from self._api.reduce(
            self._handle,
            self._info,
            self._rank,
            data,
            resolve(op).kernel,
            root=0,
            all_ranks=True,
        )
        return result
