"""Per-rank application context.

Each rank's app generator receives an :class:`AppContext`: its identity,
its communicator, and a ``compute`` primitive that consumes (simulated)
CPU time subject to the runtime's scheduling model — the BCS runtime
applies the user-level Node Manager tax, and either runtime can layer OS
noise on top.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim import Engine
from .communicator import Communicator


class AppContext:
    """What one rank of a running job sees."""

    def __init__(
        self,
        env: Engine,
        comm: Communicator,
        node_id: int,
        compute_fn: Callable[[int, int], Generator],
        job=None,
        params: Optional[dict] = None,
    ):
        self.env = env
        self.comm = comm
        self.node_id = node_id
        self._compute_fn = compute_fn
        self.job = job
        self.params = dict(params or {})

    @property
    def rank(self) -> int:
        """This process's rank."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """The job's rank count."""
        return self.comm.size

    @property
    def now(self) -> int:
        """Current simulation time (ns)."""
        return self.env.now

    def compute(self, duration: int) -> Generator:
        """Perform ``duration`` ns of computation on this node's CPU.

        The actual elapsed time depends on the runtime: CPU contention,
        the BCS Node Manager's per-slice overhead, and injected OS noise
        all stretch it.
        """
        if duration < 0:
            raise ValueError("negative compute duration")
        yield from self._compute_fn(self.node_id, duration)

    def __repr__(self) -> str:
        return f"<AppContext rank={self.rank}/{self.size} node={self.node_id}>"
