"""MPI reduction operations.

Maps the MPI op vocabulary onto the kernels in
:mod:`repro.softfloat.ops`, which provides both the host (numpy) and NIC
(softfloat) evaluation paths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Op:
    """One MPI reduction operation."""

    name: str
    #: Kernel key understood by :func:`repro.softfloat.ops.reduce_buffers`.
    kernel: str
    commutative: bool = True

    def __repr__(self) -> str:
        return f"<Op {self.name}>"


SUM = Op("MPI_SUM", "sum")
PROD = Op("MPI_PROD", "prod")
MIN = Op("MPI_MIN", "min")
MAX = Op("MPI_MAX", "max")
LAND = Op("MPI_LAND", "land")
LOR = Op("MPI_LOR", "lor")
BAND = Op("MPI_BAND", "band")
BOR = Op("MPI_BOR", "bor")
BXOR = Op("MPI_BXOR", "bxor")

BY_NAME = {
    op.name: op for op in (SUM, PROD, MIN, MAX, LAND, LOR, BAND, BOR, BXOR)
}


def resolve(op) -> Op:
    """Accept an :class:`Op`, an MPI name, or a bare kernel key."""
    if isinstance(op, Op):
        return op
    if op in BY_NAME:
        return BY_NAME[op]
    for candidate in BY_NAME.values():
        if candidate.kernel == op:
            return candidate
    raise ValueError(f"unknown reduce op {op!r}")
