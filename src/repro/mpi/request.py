"""MPI request handles (MPI_Request).

A thin, backend-neutral wrapper: both the BCS backend (whose requests are
:class:`repro.bcs.descriptors.BcsRequest`) and the baseline backend expose
objects with a ``complete`` flag, a ``done`` event, and receive metadata;
this wrapper narrows them to the MPI surface.
"""

from __future__ import annotations

from typing import Any, Optional

from .status import Status


class PersistentRequest:
    """MPI persistent communication request (MPI_Send_init/Recv_init).

    Captures the call's arguments once; each :meth:`start` posts a fresh
    instance of the operation through the owning communicator.  Between
    a completion and the next ``start`` the handle is *inactive*.
    """

    __slots__ = ("_post", "kind", "active")

    def __init__(self, post, kind: str):
        self._post = post
        self.kind = kind
        #: The in-flight request of the current round (None if inactive).
        self.active: Optional["MpiRequest"] = None

    def start(self) -> "MpiRequest":
        """Activate the operation; returns this round's request."""
        if self.active is not None and not self.active.complete:
            raise RuntimeError("persistent request already active")
        self.active = self._post()
        return self.active

    @property
    def complete(self) -> bool:
        """Whether the current round (if any) has finished."""
        return self.active is None or self.active.complete

    @property
    def payload(self):
        """The last round's delivered payload."""
        return None if self.active is None else self.active.payload

    def __repr__(self) -> str:
        state = "inactive" if self.active is None else (
            "done" if self.active.complete else "active"
        )
        return f"<PersistentRequest {self.kind} {state}>"


class MpiRequest:
    """Handle for a pending non-blocking operation."""

    __slots__ = ("backend_req", "kind")

    def __init__(self, backend_req, kind: str):
        self.backend_req = backend_req
        self.kind = kind

    @property
    def complete(self) -> bool:
        """Whether the operation has finished."""
        return self.backend_req.complete

    @property
    def done(self):
        """The completion event (internal; used by wait implementations)."""
        return self.backend_req.done

    @property
    def payload(self) -> Any:
        """Delivered data (receives), available once complete."""
        return self.backend_req.payload

    def status(self) -> Optional[Status]:
        """Receive metadata, or None if not complete / not a receive."""
        req = self.backend_req
        if not self.complete or req.source is None:
            return None
        return Status(source=req.source, tag=req.tag, count_bytes=req.size or 0)

    def __repr__(self) -> str:
        state = "done" if self.complete else "pending"
        return f"<MpiRequest {self.kind} {state}>"
