"""The backend-neutral MPI communicator interface.

Applications are written once against this interface and run unchanged on
either backend:

- :class:`repro.mpi.bcs_backend.BcsCommunicator` — BCS-MPI (the paper's
  system: descriptors, global scheduling, NIC threads).
- :class:`repro.mpi.baseline.BaselineCommunicator` — a production-style
  "Quadrics MPI" model (eager/rendezvous, host-driven).

Call convention (mirrors the mpi4py split the ecosystem uses):

- *Blocking* operations are **sub-generators**: ``yield from comm.send(...)``.
- *Non-blocking* operations are **plain calls** returning
  :class:`~repro.mpi.request.MpiRequest` immediately: ``req = comm.isend(...)``.
"""

from __future__ import annotations

import abc
from typing import Any, Generator, List, Optional, Sequence

import numpy as np

from .ops import Op
from .request import MpiRequest

#: Wildcards, re-exported at the MPI surface.
ANY_SOURCE = -1
ANY_TAG = -1


def _stack(chunks):
    """Stack per-destination chunks into one reducible array."""
    return np.stack([np.asarray(c, dtype=np.float64) for c in chunks])


class Communicator(abc.ABC):
    """Abstract MPI communicator bound to one rank of one job."""

    # -- identity ----------------------------------------------------------------

    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This process's rank within the communicator."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of ranks in the communicator."""

    # -- point-to-point, non-blocking ----------------------------------------------

    @abc.abstractmethod
    def isend(
        self,
        data: Any = None,
        dest: int = 0,
        tag: int = 0,
        size: Optional[int] = None,
    ) -> MpiRequest:
        """Post a non-blocking send of ``data`` (or ``size`` timing bytes)."""

    @abc.abstractmethod
    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        size: Optional[int] = None,
    ) -> MpiRequest:
        """Post a non-blocking receive with buffer capacity ``size``."""

    # -- point-to-point, blocking ---------------------------------------------------

    @abc.abstractmethod
    def send(
        self,
        data: Any = None,
        dest: int = 0,
        tag: int = 0,
        size: Optional[int] = None,
    ) -> Generator:
        """Blocking send; completes when the message has been delivered."""

    @abc.abstractmethod
    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        size: Optional[int] = None,
    ) -> Generator:
        """Blocking receive; returns the delivered payload."""

    # -- persistent requests (MPI_Send_init / MPI_Recv_init) -----------------------

    def send_init(
        self, data: Any = None, dest: int = 0, tag: int = 0, size: Optional[int] = None
    ):
        """Create a persistent send; activate rounds with ``.start()``."""
        from .request import PersistentRequest

        return PersistentRequest(
            lambda: self.isend(data, dest=dest, tag=tag, size=size), "send"
        )

    def recv_init(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        size: Optional[int] = None,
    ):
        """Create a persistent receive; activate rounds with ``.start()``."""
        from .request import PersistentRequest

        return PersistentRequest(
            lambda: self.irecv(source=source, tag=tag, size=size), "recv"
        )

    def startall(self, persistent_reqs: Sequence) -> List[MpiRequest]:
        """MPI_Startall: activate a set of persistent requests."""
        return [p.start() for p in persistent_reqs]

    # -- completion -------------------------------------------------------------------

    def test(self, req: MpiRequest) -> bool:
        """Non-blocking completion check."""
        return req.complete

    def testall(self, reqs: Sequence[MpiRequest]) -> bool:
        """Non-blocking check of a request set."""
        return all(r.complete for r in reqs)

    @abc.abstractmethod
    def wait(self, req: MpiRequest) -> Generator:
        """Block until ``req`` completes; returns its payload."""

    @abc.abstractmethod
    def waitall(self, reqs: Sequence[MpiRequest]) -> Generator:
        """Block until every request completes; returns their payloads."""

    # -- collectives ----------------------------------------------------------------------

    @abc.abstractmethod
    def barrier(self) -> Generator:
        """Synchronize all ranks."""

    @abc.abstractmethod
    def bcast(self, data: Any = None, root: int = 0, size: Optional[int] = None) -> Generator:
        """Broadcast from ``root``; every rank returns the payload."""

    @abc.abstractmethod
    def reduce(self, data: Any, op: Op, root: int = 0) -> Generator:
        """Reduce to ``root``; root returns the result, others None."""

    @abc.abstractmethod
    def allreduce(self, data: Any, op: Op) -> Generator:
        """Reduce; every rank returns the result."""

    # -- composed collectives (built on p2p, paper Appendix A) -------------------------------

    def scatter(self, chunks: Optional[Sequence[Any]] = None, root: int = 0) -> Generator:
        """Scatter one chunk per rank from ``root``; returns this rank's chunk."""
        return self._scatter_impl(chunks, root)

    # -- vectorial variants (paper Fig. 12: bcs_scatter(vectorial) etc.) ------

    def scatterv(
        self,
        chunks: Optional[Sequence[Any]] = None,
        root: int = 0,
        sizes: Optional[Sequence[int]] = None,
    ) -> Generator:
        """MPI_Scatterv: per-rank chunks of differing sizes.

        ``sizes`` (one entry per rank, known at every rank, as in MPI's
        recvcounts) bounds each receive; None derives sizes from the
        chunks at the root.
        """
        return self._scatterv_impl(chunks, root, sizes)

    def gatherv(self, data: Any, root: int = 0) -> Generator:
        """MPI_Gatherv: gather variable-size contributions at ``root``."""
        return self._gather_impl(data, root)  # sizes ride with payloads

    def allgatherv(self, data: Any) -> Generator:
        """MPI_Allgatherv: variable-size allgather."""
        return self._allgather_impl(data)

    def alltoallv(
        self, chunks: Sequence[Any], sizes: Optional[Sequence[int]] = None
    ) -> Generator:
        """MPI_Alltoallv: personalized exchange with per-pair sizes.

        ``sizes[j]`` bounds what rank j sends us; None leaves receives
        unbounded (the payload carries its own size).
        """
        return self._alltoallv_impl(chunks, sizes)

    def gather(self, data: Any, root: int = 0) -> Generator:
        """Gather every rank's data at ``root`` (list indexed by rank)."""
        return self._gather_impl(data, root)

    def allgather(self, data: Any) -> Generator:
        """Gather everywhere: every rank returns the full list."""
        return self._allgather_impl(data)

    def alltoall(self, chunks: Sequence[Any]) -> Generator:
        """Personalized exchange: rank i sends chunks[j] to rank j."""
        return self._alltoall_impl(chunks)

    def sendrecv(
        self,
        senddata: Any = None,
        dest: int = 0,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        size: Optional[int] = None,
        recvsize: Optional[int] = None,
    ) -> Generator:
        """MPI_Sendrecv: simultaneous send and receive (deadlock-free)."""
        return self._sendrecv_impl(
            senddata, dest, source, sendtag, recvtag, size, recvsize
        )

    def scan(self, data: Any, op: Op) -> Generator:
        """MPI_Scan: inclusive prefix reduction over ranks 0..self."""
        return self._scan_impl(data, op, inclusive=True)

    def exscan(self, data: Any, op: Op) -> Generator:
        """MPI_Exscan: exclusive prefix reduction (rank 0 returns None)."""
        return self._scan_impl(data, op, inclusive=False)

    def reduce_scatter_block(self, chunks: Sequence[Any], op: Op) -> Generator:
        """MPI_Reduce_scatter_block: reduce then scatter one chunk each."""
        return self._reduce_scatter_impl(chunks, op)

    # Default compositions over the abstract p2p/collective primitives.
    # Backends may override with faster native protocols.

    _SCATTER_TAG = -1001
    _GATHER_TAG = -1002
    _ALLTOALL_TAG = -1003
    _SENDRECV_TAG_BASE = -1004
    _SCAN_TAG = -1005
    _RSCAT_TAG = -1006

    def _scatter_impl(self, chunks, root):
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError("scatter root needs one chunk per rank")
            reqs = [
                self.isend(chunks[r], dest=r, tag=self._SCATTER_TAG)
                for r in range(self.size)
                if r != root
            ]
            yield from self.waitall(reqs)
            return chunks[root]
        payload = yield from self.recv(source=root, tag=self._SCATTER_TAG)
        return payload

    def _gather_impl(self, data, root):
        if self.rank == root:
            reqs = {
                r: self.irecv(source=r, tag=self._GATHER_TAG)
                for r in range(self.size)
                if r != root
            }
            yield from self.waitall(list(reqs.values()))
            out: List[Any] = [None] * self.size
            out[root] = data
            for r, req in reqs.items():
                out[r] = req.payload
            return out
        yield from self.send(data, dest=root, tag=self._GATHER_TAG)
        return None

    def _allgather_impl(self, data):
        gathered = yield from self.gather(data, root=0)
        result = yield from self.bcast(gathered, root=0)
        return result

    def _sendrecv_impl(self, senddata, dest, source, sendtag, recvtag, size, recvsize):
        send_req = self.isend(senddata, dest=dest, tag=sendtag, size=size)
        recv_req = self.irecv(source=source, tag=recvtag, size=recvsize)
        yield from self.waitall([send_req, recv_req])
        return recv_req.payload

    def _scan_impl(self, data, op, inclusive):
        """Linear-chain prefix reduction (deterministic order).

        Rank r receives the prefix over 0..r-1 from rank r-1, combines,
        and forwards the prefix over 0..r to rank r+1.
        """
        from ..softfloat import reduce_buffers
        from .ops import resolve

        import numpy as np

        kernel = resolve(op).kernel

        def combine(a, b):
            if isinstance(a, np.ndarray):
                return reduce_buffers(kernel, [a, b], path="host")
            return reduce_buffers(
                kernel, [np.asarray(a), np.asarray(b)], path="host"
            ).item()

        prefix_below = None
        if self.rank > 0:
            prefix_below = yield from self.recv(
                source=self.rank - 1, tag=self._SCAN_TAG
            )
        running = data if prefix_below is None else combine(prefix_below, data)
        if self.rank + 1 < self.size:
            yield from self.send(running, dest=self.rank + 1, tag=self._SCAN_TAG)
        if inclusive:
            return running
        return prefix_below  # None on rank 0, as MPI_Exscan leaves it

    def _reduce_scatter_impl(self, chunks, op):
        if len(chunks) != self.size:
            raise ValueError("reduce_scatter needs one chunk per rank")
        reduced = yield from self.reduce(_stack(chunks), op, root=0)
        mine = yield from self.scatter(
            list(reduced) if self.rank == 0 else None, root=0
        )
        return mine

    def _alltoall_impl(self, chunks):
        if len(chunks) != self.size:
            raise ValueError("alltoall needs one chunk per rank")
        sends = [
            self.isend(chunks[r], dest=r, tag=self._ALLTOALL_TAG)
            for r in range(self.size)
            if r != self.rank
        ]
        recvs = {
            r: self.irecv(source=r, tag=self._ALLTOALL_TAG)
            for r in range(self.size)
            if r != self.rank
        }
        yield from self.waitall(sends + list(recvs.values()))
        out: List[Any] = [None] * self.size
        out[self.rank] = chunks[self.rank]
        for r, req in recvs.items():
            out[r] = req.payload
        return out

    def _scatterv_impl(self, chunks, root, sizes):
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError("scatterv root needs one chunk per rank")
            reqs = [
                self.isend(chunks[r], dest=r, tag=self._SCATTER_TAG)
                for r in range(self.size)
                if r != root
            ]
            yield from self.waitall(reqs)
            return chunks[root]
        cap = None if sizes is None else sizes[self.rank]
        payload = yield from self.recv(source=root, tag=self._SCATTER_TAG, size=cap)
        return payload

    def _alltoallv_impl(self, chunks, sizes):
        if len(chunks) != self.size:
            raise ValueError("alltoallv needs one chunk per rank")
        if sizes is not None and len(sizes) != self.size:
            raise ValueError("alltoallv needs one size per rank")
        sends = [
            self.isend(chunks[r], dest=r, tag=self._ALLTOALL_TAG)
            for r in range(self.size)
            if r != self.rank
        ]
        recvs = {
            r: self.irecv(
                source=r,
                tag=self._ALLTOALL_TAG,
                size=None if sizes is None else sizes[r],
            )
            for r in range(self.size)
            if r != self.rank
        }
        yield from self.waitall(sends + list(recvs.values()))
        out: List[Any] = [None] * self.size
        out[self.rank] = chunks[self.rank]
        for r, req in recvs.items():
            out[r] = req.payload
        return out
