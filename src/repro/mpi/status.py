"""MPI_Status: metadata of a completed receive."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Source, tag, and byte count of a matched message."""

    source: int
    tag: int
    count_bytes: int

    def get_count(self, extent: int = 1) -> int:
        """Number of elements of size ``extent`` in the message."""
        if extent <= 0:
            raise ValueError("extent must be positive")
        return self.count_bytes // extent
