"""MPI facade: one interface, two backends (BCS-MPI and baseline)."""

from . import datatypes, ops
from .communicator import ANY_SOURCE, ANY_TAG, Communicator
from .context import AppContext
from .request import MpiRequest
from .status import Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AppContext",
    "Communicator",
    "MpiRequest",
    "Status",
    "datatypes",
    "ops",
]
