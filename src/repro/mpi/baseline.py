"""The production-MPI baseline ("Quadrics MPI" model).

The paper compares BCS-MPI against Quadrics MPI (MPICH 1.2.4 over
qsnetlibs).  This backend models that class of library on the same
simulated cluster:

- **eager protocol** below a threshold: data travels immediately with the
  message; unexpected messages are buffered at the receiver and copied on
  match;
- **rendezvous protocol** above it: RTS control message, CTS once the
  receive is posted, then the bulk DMA;
- **host involvement**: every MPI call costs host CPU time (the overhead
  BCS-MPI's NIC offload avoids);
- **hardware collectives**: barrier on the network conditional, broadcast
  on the hardware multicast, reduce as a host-side binomial tree over
  point-to-point messages (same tree shape as the BCS Reduce Helper, so
  floating-point results are comparable);
- **no global quantization**: completions wake processes immediately —
  this is what gives the baseline its point-to-point latency advantage;
- **no asynchronous rendezvous progress**: like MPICH-era libraries
  without a progress thread, a rendezvous transfer only advances while
  the *receiver* is inside an MPI call.  A non-blocking large receive
  posted before a long computation therefore moves its data during the
  final MPI_Wait — whereas BCS-MPI's NIC threads move it during the
  computation.  This asymmetry is the overlap advantage the paper
  credits for SAGE and non-blocking SWEEP3D (§5.3–5.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Dict, Generator, List, Optional, Sequence

import numpy as np

from ..bcs.descriptors import (
    ANY_SOURCE,
    ANY_TAG,
    BcsRequest,
    RecvDescriptor,
    SendDescriptor,
    payload_nbytes,
)
from ..bcs.matching import Matcher
from ..bcs.runtime import CommInfo
from ..bcs.threads import _copy_payload
from ..network import Cluster
from ..softfloat import reduce_buffers
from ..storm.job import Job, JobSpec, block_placement
from ..units import KiB, bw_time, seconds, us
from .communicator import Communicator
from .ops import resolve
from .request import MpiRequest


@dataclass(frozen=True)
class BaselineConfig:
    """Timing model of the production MPI library."""

    #: Host CPU cost of a blocking send/recv call.
    call_overhead: int = us(1.6)
    #: Host CPU cost of posting a non-blocking operation.
    nb_call_overhead: int = us(1.1)
    #: Host CPU cost of MPI_Wait/Waitall per call.
    wait_overhead: int = us(0.9)
    #: Eager/rendezvous switchover.
    eager_threshold: int = 32 * KiB
    #: Size of RTS/CTS control messages.
    control_bytes: int = 96
    #: Memory bandwidth for copying unexpected eager messages out of the
    #: bounce buffer, bytes/s.
    copy_bandwidth: float = 900e6
    #: Extra latency of the hardware barrier beyond the network
    #: conditional itself.
    barrier_overhead: int = us(4)
    #: Host reduce arithmetic, ns per element (P-III with PCI crossings).
    host_reduce_cost_per_element: int = 30
    #: MPI_Init + job launch cost (production MPI starts fast; the
    #: paper's BCS prototype pays much more, which is what hurts IS).
    init_cost: int = seconds(0.15)

    def with_(self, **kw) -> "BaselineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kw)


class _CollectiveState:
    """Per-(comm, epoch) rendezvous point for barriers and broadcasts."""

    def __init__(self, env, n: int):
        self.arrived = 0
        self.n = n
        self.done = env.event(name="coll")
        self.value: Any = None


class BaselineRuntime:
    """Runtime for the production-MPI model on one cluster."""

    def __init__(self, cluster: Cluster, config: Optional[BaselineConfig] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or BaselineConfig()
        self.jobs: Dict[int, Job] = {}
        self.comms: Dict[tuple, CommInfo] = {}
        self._comm_by_members: Dict[tuple, CommInfo] = {}
        #: One matcher per (job, comm, rank): baseline matching happens
        #: in the library at the receiving process.
        self.matchers: Dict[tuple, Matcher] = {}
        self.coll_state: Dict[tuple, _CollectiveState] = {}
        self.stats: Counter = Counter()
        #: (job_id, world_rank) -> True while that process is inside an
        #: MPI call (the only time the library can progress rendezvous).
        self._in_mpi: Dict[tuple, bool] = {}
        #: (job_id, world_rank) -> Signal pulsed on MPI entry.
        self._mpi_entry: Dict[tuple, object] = {}

    # -- registry -----------------------------------------------------------------

    def comm_info(self, job_id: int, comm_id: int) -> CommInfo:
        """Communicator metadata."""
        return self.comms[(job_id, comm_id)]

    def register_comm(self, job: Job, world_ranks: Sequence[int]) -> CommInfo:
        """Create (or fetch) a communicator over a subset of a job's ranks."""
        member_key = (job.id, tuple(world_ranks))
        existing = self._comm_by_members.get(member_key)
        if existing is not None:
            return existing
        comm_id = sum(1 for key in self.comms if key[0] == job.id)
        info = CommInfo(job, comm_id, world_ranks)
        self.comms[(job.id, comm_id)] = info
        self._comm_by_members[member_key] = info
        return info

    def matcher(self, job_id: int, comm_id: int, rank: int) -> Matcher:
        key = (job_id, comm_id, rank)
        m = self.matchers.get(key)
        if m is None:
            m = Matcher(rank)
            self.matchers[key] = m
        return m

    # -- progress-engine gating -------------------------------------------------

    def _entry_signal(self, job_id: int, world_rank: int):
        from ..sim import Signal

        key = (job_id, world_rank)
        sig = self._mpi_entry.get(key)
        if sig is None:
            sig = Signal(self.env, name=f"mpi_entry:{key}")
            self._mpi_entry[key] = sig
        return sig

    def enter_mpi(self, job_id: int, world_rank: int) -> None:
        """Mark a process as inside the MPI library (depth-counted)."""
        key = (job_id, world_rank)
        self._in_mpi[key] = self._in_mpi.get(key, 0) + 1
        self._entry_signal(job_id, world_rank).pulse()

    def exit_mpi(self, job_id: int, world_rank: int) -> None:
        """Leave one nesting level of the MPI library."""
        key = (job_id, world_rank)
        self._in_mpi[key] = self._in_mpi.get(key, 1) - 1

    def wait_progress_window(self, job_id: int, world_rank: int):
        """Block until the receiver is inside an MPI call.

        Models the lack of an asynchronous progress thread: rendezvous
        data moves only while the receiving process is in the library.
        """
        while self._in_mpi.get((job_id, world_rank), 0) <= 0:
            yield self._entry_signal(job_id, world_rank).wait()

    # -- job lifecycle -----------------------------------------------------------------

    def launch(self, spec: JobSpec, placement: Optional[List[int]] = None) -> Job:
        """Start a job under the production-MPI model."""
        if placement is None:
            placement = block_placement(
                spec.n_ranks,
                self.cluster.n_compute_nodes,
                self.cluster.spec.cpus_per_node,
            )
        job = Job(self.env, spec, placement)
        job.started_at = self.env.now
        self.jobs[job.id] = job
        self.register_comm(job, range(spec.n_ranks))

        from .context import AppContext

        for rank in range(spec.n_ranks):
            comm = BaselineCommunicator(self, self.comm_info(job.id, 0), rank)
            node_id = job.placement[rank]
            ctx = AppContext(
                self.env,
                comm,
                node_id,
                compute_fn=self._make_compute(node_id),
                job=job,
                params=spec.params,
            )
            self.env.process(
                self._rank_body(job, rank, ctx), name=f"{spec.name}.r{rank}"
            )
        return job

    def _make_compute(self, node_id: int):
        node = self.cluster.node(node_id)

        def compute(_node_id: int, duration: int):
            yield from node.host_compute(duration)

        return compute

    def _rank_body(self, job: Job, rank: int, ctx):
        if self.config.init_cost:
            yield self.env.timeout(self.config.init_cost)
        result = yield from job.spec.app(ctx, **job.spec.params)
        job.rank_finished(rank, result)

    def run_job(
        self,
        spec: JobSpec,
        placement: Optional[List[int]] = None,
        max_time: Optional[int] = None,
    ) -> Job:
        """Launch a job and run until it completes (watchdog optional)."""
        job = self.launch(spec, placement)
        if max_time is None:
            self.env.run(until=job.done)
        else:
            self.env.run(until=self.env.any_of([job.done, self.env.timeout(max_time)]))
            if not job.complete:
                raise RuntimeError(
                    f"job {spec.name!r} did not finish within {max_time} ns "
                    "(likely an application communication deadlock)"
                )
        return job

    # -- transport ----------------------------------------------------------------------

    def start_send(self, info: CommInfo, send: SendDescriptor) -> None:
        """Inject a message: eager ships data now, rendezvous ships RTS.

        Eager payloads are snapshotted here — the library copies them
        into its bounce buffer at injection, so the application may
        reuse the buffer as soon as the send completes.  Rendezvous
        payloads are read at transfer time (the buffer must stay valid
        until completion, as in real MPI).
        """
        if send.size <= self.config.eager_threshold:
            send.payload = _copy_payload(send.payload)
        self.env.process(self._send_proc(info, send), name="mpi.send")

    def _send_proc(self, info: CommInfo, send: SendDescriptor):
        cfg = self.config
        fabric = self.cluster.fabric
        src_node = info.node_of(send.src_rank)
        dst_node = info.node_of(send.dst_rank)
        eager = send.size <= cfg.eager_threshold
        self.stats["eager" if eager else "rendezvous"] += 1

        if eager:
            yield from fabric.unicast(src_node, dst_node, send.size, label="eager")
            send.request._finish()  # sender buffer reusable
            self._arrive(info, send, data_arrived=True)
            return

        # Rendezvous: RTS carries the descriptor only.
        yield from fabric.unicast(src_node, dst_node, cfg.control_bytes, label="rts")
        self._arrive(info, send, data_arrived=False)

    def _arrive(self, info: CommInfo, send: SendDescriptor, data_arrived: bool) -> None:
        send.payload_here = data_arrived  # type: ignore[attr-defined]
        matcher = self.matcher(send.job_id, send.comm_id, send.dst_rank)
        match = matcher.add_send(send)
        if match is not None:
            self._on_match(info, match)

    def post_recv(self, info: CommInfo, recv: RecvDescriptor) -> None:
        """Register a posted receive with the library matcher."""
        matcher = self.matcher(recv.job_id, recv.comm_id, recv.rank)
        match = matcher.add_recv(recv)
        if match is not None:
            self._on_match(info, match)

    def _on_match(self, info: CommInfo, match) -> None:
        self.env.process(self._finish_match(info, match), name="mpi.match")

    def _finish_match(self, info: CommInfo, match):
        cfg = self.config
        fabric = self.cluster.fabric
        send, recv = match.send, match.recv
        src_node = info.node_of(send.src_rank)
        dst_node = info.node_of(send.dst_rank)

        if getattr(send, "payload_here", False):
            # Eager data is already on the node; unexpected arrivals cost
            # a copy out of the bounce buffer.
            if not recv.request.complete and send.size > 0:
                yield self.env.timeout(bw_time(send.size, cfg.copy_bandwidth))
        else:
            # Rendezvous: without an async progress thread, nothing moves
            # until the receiving process re-enters the MPI library.
            recv_world = self._info_world_rank(info, send.dst_rank)
            yield from self.wait_progress_window(send.job_id, recv_world)
            # CTS back to the sender, then the bulk transfer.
            yield from fabric.unicast(dst_node, src_node, cfg.control_bytes, label="cts")
            yield from fabric.unicast(src_node, dst_node, send.size, label="rdv")
            send.request._finish()

        recv.request.payload = _copy_payload(send.payload)
        recv.request.source = send.src_rank
        recv.request.tag = send.tag
        recv.request.size = send.size
        recv.request._finish()
        self.stats["messages_delivered"] += 1

    # -- collectives ----------------------------------------------------------------------

    @staticmethod
    def _info_world_rank(info: CommInfo, comm_rank: int) -> int:
        return info.world_ranks[comm_rank]

    def sync_point(self, info: CommInfo, epoch_key: tuple) -> _CollectiveState:
        """Get/create the rendezvous state for one collective instance."""
        state = self.coll_state.get(epoch_key)
        if state is None:
            state = _CollectiveState(self.env, info.size)
            self.coll_state[epoch_key] = state
        return state


class BaselineCommunicator(Communicator):
    """An MPI communicator backed by the production-MPI model."""

    _TREE_TAG = -2001

    def __init__(self, runtime: BaselineRuntime, info: CommInfo, comm_rank: int):
        self._runtime = runtime
        self._info = info
        self._rank = comm_rank
        self._send_seq: Dict[int, int] = {}
        self._epochs: Dict[str, int] = {}

    # -- identity --------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._info.size

    @property
    def backend_name(self) -> str:
        """Identifies the runtime flavour ("baseline")."""
        return "baseline"

    @property
    def env(self):
        return self._runtime.env

    def split(self, member_ranks: Sequence[int]) -> Optional["BaselineCommunicator"]:
        """Sub-communicator over the given ranks of this communicator."""
        world_ranks = [self._info.world_ranks[r] for r in member_ranks]
        if self._rank not in member_ranks:
            return None
        new_info = self._runtime.register_comm(self._info.job, world_ranks)
        return BaselineCommunicator(
            self._runtime, new_info, list(member_ranks).index(self._rank)
        )

    # -- helpers -----------------------------------------------------------------

    def _in_lib(self):
        """Context marking this process as inside the MPI library.

        While the flag is up the runtime may progress rendezvous
        transfers destined to this process.
        """
        from contextlib import contextmanager

        runtime = self._runtime
        job_id = self._info.job.id
        world = self._info.world_ranks[self._rank]

        @contextmanager
        def section():
            runtime.enter_mpi(job_id, world)
            try:
                yield
            finally:
                runtime.exit_mpi(job_id, world)

        return section()

    def _overhead(self, cost: int) -> Generator:
        node = self._runtime.cluster.node(self._info.node_of(self._rank))
        yield from node.cpu.held(cost)

    def _next_seq(self, dst: int) -> int:
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        return seq

    def _next_epoch(self, kind: str) -> int:
        # All ranks call collectives in the same order, so a local
        # counter names the instance consistently across ranks.
        epoch = self._epochs.get(kind, 0) + 1
        self._epochs[kind] = epoch
        return epoch

    def _make_send(self, data, dest, tag, size) -> SendDescriptor:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} outside communicator")
        req = BcsRequest(self.env, "send")
        return SendDescriptor(
            job_id=self._info.job.id,
            comm_id=self._info.comm_id,
            src_rank=self._rank,
            dst_rank=dest,
            tag=tag,
            size=payload_nbytes(data, size),
            request=req,
            payload=data,
            seq=self._next_seq(dest),
        )

    def _make_recv(self, source, tag, size) -> RecvDescriptor:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"source rank {source} outside communicator")
        req = BcsRequest(self.env, "recv")
        return RecvDescriptor(
            job_id=self._info.job.id,
            comm_id=self._info.comm_id,
            rank=self._rank,
            src_rank=source,
            tag=tag,
            capacity=(1 << 62) if size is None else size,
            request=req,
        )

    # -- point-to-point --------------------------------------------------------------

    def isend(self, data: Any = None, dest: int = 0, tag: int = 0, size=None) -> MpiRequest:
        send = self._make_send(data, dest, tag, size)
        self._runtime.start_send(self._info, send)
        return MpiRequest(send.request, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, size=None) -> MpiRequest:
        recv = self._make_recv(source, tag, size)
        self._runtime.post_recv(self._info, recv)
        return MpiRequest(recv.request, "irecv")

    def send(self, data: Any = None, dest: int = 0, tag: int = 0, size=None) -> Generator:
        with self._in_lib():
            yield from self._overhead(self._runtime.config.call_overhead)
            req = self.isend(data, dest, tag, size)
            if not req.complete:
                yield req.done

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, size=None) -> Generator:
        with self._in_lib():
            yield from self._overhead(self._runtime.config.call_overhead)
            req = self.irecv(source, tag, size)
            if not req.complete:
                yield req.done
        return req.payload

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Check the unexpected queue for a matching arrival."""
        matcher = self._runtime.matcher(
            self._info.job.id, self._info.comm_id, self._rank
        )
        probe = self._make_recv(source, tag, None)
        return any(probe.matches(s) for s in matcher.unexpected)

    # -- completion ---------------------------------------------------------------------

    def wait(self, req: MpiRequest) -> Generator:
        with self._in_lib():
            yield from self._overhead(self._runtime.config.wait_overhead)
            if not req.complete:
                yield req.done
        return req.payload

    def waitall(self, reqs: Sequence[MpiRequest]) -> Generator:
        with self._in_lib():
            yield from self._overhead(self._runtime.config.wait_overhead)
            pending = [r.done for r in reqs if not r.complete]
            if pending:
                yield self.env.all_of(pending)
        return [r.payload for r in reqs]

    # -- collectives -----------------------------------------------------------------------

    def barrier(self) -> Generator:
        """Hardware barrier: network conditional over the comm's nodes."""
        runtime = self._runtime
        with self._in_lib():
            yield from self._barrier_body()
        runtime.stats["barriers"] += 1

    def _barrier_body(self) -> Generator:
        runtime = self._runtime
        yield from self._overhead(runtime.config.call_overhead)
        key = (self._info.job.id, self._info.comm_id, "bar", self._next_epoch("bar"))
        state = runtime.sync_point(self._info, key)
        state.arrived += 1
        if state.arrived == state.n:
            yield from runtime.cluster.fabric.conditional(
                self._info.node_of(self._rank), len(self._info.nodes)
            )
            yield self.env.timeout(runtime.config.barrier_overhead)
            state.done.succeed(None)
        else:
            yield state.done

    def bcast(self, data: Any = None, root: int = 0, size=None) -> Generator:
        """Hardware-multicast broadcast from the root's node."""
        runtime = self._runtime
        with self._in_lib():
            result = yield from self._bcast_body(data, root, size)
        return result

    def _bcast_body(self, data, root, size) -> Generator:
        runtime = self._runtime
        yield from self._overhead(runtime.config.call_overhead)
        key = (self._info.job.id, self._info.comm_id, "bc", self._next_epoch("bc"))
        state = runtime.sync_point(self._info, key)
        state.arrived += 1
        if self._rank == root:
            state.value = data
            yield from runtime.cluster.fabric.multicast(
                self._info.node_of(root),
                self._info.nodes,
                payload_nbytes(data, size),
                label="bcast",
            )
            state.done.succeed(None)
        elif not state.done.triggered:
            yield state.done
        runtime.stats["bcasts"] += 1
        return _copy_payload(state.value)

    def reduce(self, data: Any, op, root: int = 0) -> Generator:
        """Host-side binomial tree over point-to-point messages."""
        with self._in_lib():
            result = yield from self._tree_reduce(data, op, root)
        return result if self._rank == root else None

    def allreduce(self, data: Any, op) -> Generator:
        """Reduce to rank 0 then hardware broadcast."""
        with self._in_lib():
            partial = yield from self._tree_reduce(data, op, 0)
            result = yield from self._bcast_body(partial, 0, None)
        return result

    def _tree_reduce(self, data: Any, op, root: int) -> Generator:
        """Binomial gather tree (same shape as the BCS Reduce Helper)."""
        runtime = self._runtime
        kernel = resolve(op).kernel
        yield from self._overhead(runtime.config.call_overhead)
        n = self.size
        epoch = self._next_epoch("red")
        tag = self._TREE_TAG - epoch % 1000
        vidx = (self._rank - root) % n
        partial = _copy_payload(data)

        rnd = 0
        while (1 << rnd) < n:
            step = 1 << rnd
            if vidx % (step << 1) == 0:
                peer = vidx + step
                if peer < n:
                    incoming = yield from self.recv(
                        source=(peer + root) % n, tag=tag
                    )
                    cost = (
                        incoming.size
                        if isinstance(incoming, np.ndarray)
                        else 1
                    ) * runtime.config.host_reduce_cost_per_element
                    yield self.env.timeout(cost)
                    partial = self._combine(kernel, partial, incoming)
            elif vidx % (step << 1) == step:
                yield from self.send(partial, dest=(vidx - step + root) % n, tag=tag)
                return None
            rnd += 1
        return partial

    @staticmethod
    def _combine(kernel: str, a, b):
        if isinstance(a, np.ndarray):
            return reduce_buffers(kernel, [a, b], path="host")
        return reduce_buffers(kernel, [np.asarray(a), np.asarray(b)], path="host").item()
